"""End-to-end serving demo: three tenants, three backends, one chip pool.

Drives the full serving stack the way a deployment would:

* **initech** sends raw encrypted traffic — EvalMult, additions, and slot
  rotations — as wire bytes, with its evaluation keys registered once;
* **acme** runs encrypted logistic-regression batches;
* **globex** runs CryptoNets-style encrypted inference;

and the same 21-job workload is served by all three backends. Every raw
result is decrypted client-side and checked against locally computed
:class:`~repro.bfv.Bfv` ground truth, every app job self-verifies against
its plaintext reference, and the three backends must return bit-identical
ciphertext bytes. A second pass compares a chip pool of 1 against a pool
of 4 on identical traffic to show the makespan shrink.

Run:  ``python examples/encrypted_service_demo.py``  (or ``repro-serve``
after ``pip install -e .``).

The console script also fronts the asyncio wire transport:

* ``repro-serve --listen [HOST:]PORT`` starts a TCP listener a remote
  :class:`~repro.service.client.FheClient` can drive;
* ``repro-serve --smoke`` spins up an ephemeral listener, pushes one
  chip-native EvalMult *and* one compiled logistic-regression circuit
  through a real socket with completion callbacks, and asserts both
  results are bit-identical to local ground truth — the transport stage
  of ``tools/run_checks.sh --transport``.

The fully over-the-wire three-tenant demo (raw ops + both app circuits
through one TCP server) lives in ``examples/encrypted_service_demo.py``.
"""

from __future__ import annotations

import argparse
import random
from dataclasses import dataclass

from repro.bfv import BatchEncoder, Bfv, BfvParameters, RotationEngine
from repro.eval.tables import print_table as _print_table
from repro.service.jobs import JobKind
from repro.service.serialization import (
    deserialize_ciphertext,
    serialize_ciphertext,
    serialize_galois_key,
    serialize_params,
    serialize_relin_key,
)
from repro.service.server import FheServer

BACKENDS = ("chip_pool", "software", "fastntt")


@dataclass
class RawClient:
    """initech's client-side state: keys stay here, only wire bytes leave."""

    params: BfvParameters
    bfv: Bfv
    keys: object
    encoder: BatchEncoder
    rotor: RotationEngine

    @classmethod
    def build(cls, seed: int = 2026) -> "RawClient":
        params = BfvParameters.toy(n=16, log_q=80)
        bfv = Bfv(params, seed=seed)
        keys = bfv.keygen(relin_digit_bits=12)
        encoder = BatchEncoder(params)
        rotor = RotationEngine(bfv, keys.secret, digit_bits=12)
        return cls(params, bfv, keys, encoder, rotor)

    def encrypt_slots(self, values: list[int]):
        return self.bfv.encrypt(self.encoder.encode(values), self.keys.public)

    def decrypt_slots(self, ct) -> list[int]:
        return self.encoder.decode(self.bfv.decrypt(ct, self.keys.secret))


def build_traffic(client: RawClient, seed: int = 7):
    """Generate the 21-job mixed workload ONCE.

    The same operand bytes go to every backend, so results must come back
    bit-identical. Each raw op carries its ground-truth ciphertext
    computed locally with the client's own :class:`~repro.bfv.Bfv`.
    """
    rng = random.Random(seed)
    t = client.params.t
    slots = lambda: [rng.randrange(min(t, 64)) for _ in range(client.params.n)]
    raw_ops = []  # (kind, operand wire bytes, steps, expected ground truth)
    for _ in range(5):
        a, b = client.encrypt_slots(slots()), client.encrypt_slots(slots())
        expected = client.bfv.multiply_relin(a, b, client.keys.relin)
        raw_ops.append((JobKind.MULTIPLY,
                        (serialize_ciphertext(a), serialize_ciphertext(b)),
                        0, expected))
    for _ in range(4):
        a, b = client.encrypt_slots(slots()), client.encrypt_slots(slots())
        raw_ops.append((JobKind.ADD,
                        (serialize_ciphertext(a), serialize_ciphertext(b)),
                        0, client.bfv.add(a, b)))
    for _ in range(2):
        a = client.encrypt_slots(slots())
        raw_ops.append((JobKind.ROTATE, (serialize_ciphertext(a),),
                        1, client.rotor.rotate_rows(a, 1)))
    logreg_batches = [
        [[rng.randint(-3, 3) for _ in range(6)] for _ in range(4)]
        for _ in range(5)
    ]
    cnn_batches = [
        [[rng.randint(-2, 2) for _ in range(36)] for _ in range(3)]
        for _ in range(5)
    ]
    return raw_ops, logreg_batches, cnn_batches


def submit_workload(server: FheServer, client: RawClient, backend: str, traffic):
    """Queue the shared workload on one backend; returns ids to verify."""
    raw_ops, logreg_batches, cnn_batches = traffic
    sid = server.open_session(
        "initech",
        serialize_params(client.params),
        relin_key=serialize_relin_key(client.keys.relin, client.params),
        galois_keys=(
            serialize_galois_key(
                client.rotor.galois_key(pow(3, 1, 2 * client.params.n)),
                client.params,
            ),
        ),
    )
    raw_checks = []  # (job_id, expected ground-truth ciphertext)
    for kind, operands, steps, expected in raw_ops:
        jid = server.submit(sid, kind, operands, steps=steps, backend=backend)
        raw_checks.append((jid, expected))

    app_jobs = []
    logreg_sid = server.open_app_session("acme", JobKind.LOGREG)
    for samples in logreg_batches:
        app_jobs.append(server.submit(
            logreg_sid, JobKind.LOGREG,
            payload={"samples": samples, "seed": 11}, backend=backend,
        ))
    cnn_sid = server.open_app_session("globex", JobKind.CRYPTONETS)
    for images in cnn_batches:
        app_jobs.append(server.submit(
            cnn_sid, JobKind.CRYPTONETS,
            payload={"images": images, "seed": 7}, backend=backend,
        ))
    return raw_checks, app_jobs


def verify_backend(server: FheServer, client: RawClient, backend: str,
                   raw_checks, app_jobs) -> list[bytes]:
    """Check every result against ground truth; returns raw result bytes."""
    raw_bytes = []
    for jid, expected in raw_checks:
        wire = server.result(jid)  # drives the scheduler as needed
        raw_bytes.append(wire)
        got = deserialize_ciphertext(wire, client.params)
        got_pt = client.bfv.decrypt(got, client.keys.secret)
        want_pt = client.bfv.decrypt(expected, client.keys.secret)
        assert got_pt == want_pt, (
            f"{backend}: job {jid} decryption diverged from Bfv ground truth"
        )
    for jid in app_jobs:
        result = server.result(jid)
        assert result["verified"], f"{backend}: app job {jid} failed verification"
    print(f"  {backend}: {len(raw_checks)} raw + {len(app_jobs)} app jobs "
          "verified against Bfv ground truth ✓")
    return raw_bytes


def pool_scaling(client: RawClient, sizes=(1, 4), jobs: int = 12) -> list[dict]:
    """Identical EvalMult traffic on different pool sizes; report makespan."""
    rng = random.Random(99)
    rows = []
    for size in sizes:
        server = FheServer(pool_size=size, max_batch=2)
        sid = server.open_session(
            "initech",
            serialize_params(client.params),
            relin_key=serialize_relin_key(client.keys.relin, client.params),
        )
        for _ in range(jobs):
            vals = [rng.randrange(32) for _ in range(client.params.n)]
            a, b = client.encrypt_slots(vals), client.encrypt_slots(vals)
            server.submit(sid, JobKind.MULTIPLY, (a, b), backend="chip_pool")
        server.run()
        pool = server.chip_pool
        rows.append({
            "pool_size": size,
            "jobs": jobs,
            "wall_cycles": pool.wall_cycles,
            "total_cycles": pool.total_cycles,
            "wall_ms": pool.wall_seconds() * 1e3,
        })
    assert rows[-1]["wall_cycles"] < rows[0]["wall_cycles"], (
        "growing the chip pool must shrink the aggregate wall cycles"
    )
    return rows


def load_tenants(path: str) -> tuple[dict[str, str], dict]:
    """Parse a ``--tenants`` file into (auth table, quota table).

    One tenant per line, whitespace-separated::

        tenant token [max_inflight] [rate] [burst]

    Blank lines and ``#`` comments are skipped. The optional numeric
    columns configure the tenant's admission quota (0 disables each);
    ``burst`` defaults to ``ceil(rate)`` when a rate is given.
    """
    import math

    from repro.service.server import TenantQuota

    tenants: dict[str, str] = {}
    quotas: dict[str, TenantQuota] = {}
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            fields = line.split()
            if len(fields) < 2 or len(fields) > 5:
                raise SystemExit(
                    f"{path}:{lineno}: want 'tenant token "
                    f"[max_inflight] [rate] [burst]', got {raw.strip()!r}"
                )
            tenant, token = fields[0], fields[1]
            if tenant in tenants:
                raise SystemExit(f"{path}:{lineno}: duplicate tenant {tenant!r}")
            tenants[tenant] = token
            try:
                max_inflight = int(fields[2]) if len(fields) > 2 else 0
                rate = float(fields[3]) if len(fields) > 3 else 0.0
                burst = (int(fields[4]) if len(fields) > 4
                         else math.ceil(rate))
            except ValueError as exc:
                raise SystemExit(f"{path}:{lineno}: {exc}")
            if max_inflight or rate or burst:
                quotas[tenant] = TenantQuota(
                    max_inflight=max_inflight, rate=rate, burst=burst
                )
    return tenants, quotas


def serve(listen: str, pool_size: int, max_batch: int,
          stats_interval: float = 0.0, fleet: int = 0,
          fleet_mode: str = "process", max_inflight: int = 0,
          tenants_file: str | None = None) -> int:
    """Run the asyncio wire transport until interrupted."""
    import asyncio
    import json

    from repro.service.transport import FheTransportServer

    host, _, port_text = listen.rpartition(":")
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(f"--listen wants [HOST:]PORT, got {listen!r}")
    tenants = quotas = None
    if tenants_file is not None:
        tenants, quotas = load_tenants(tenants_file)

    async def _stats_logger(server):
        # One structured-log line per interval: JSON so a log pipeline
        # can ingest it without scraping the Prometheus endpoint.
        while True:
            await asyncio.sleep(stats_interval)
            snap = await server.stats_snapshot()
            print(json.dumps({"repro_stats": snap}, sort_keys=True),
                  flush=True)

    async def _serve():
        fhe = FheServer(
            pool_size=pool_size, max_batch=max_batch,
            fleet_size=fleet, fleet_mode=fleet_mode,
            default_backend="fleet" if fleet > 0 else "chip_pool",
            quotas=quotas,
        )
        server = FheTransportServer(
            fhe, host=host, port=port, max_inflight=max_inflight,
            tenants=tenants,
        )
        bound_host, bound_port = await server.start()
        engine = (
            f"fleet x{fleet} ({fleet_mode} workers)" if fleet > 0
            else f"chip pool x{pool_size}"
        )
        auth = (
            f", auth for {len(tenants)} tenant(s)" if tenants is not None
            else ""
        )
        print(f"repro-serve: listening on {bound_host}:{bound_port} "
              f"({engine}{auth}, Ctrl-C to stop)", flush=True)
        logger_task = (
            asyncio.ensure_future(_stats_logger(server))
            if stats_interval > 0 else None
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            if logger_task is not None:
                logger_task.cancel()
            print("repro-serve: draining in-flight jobs…")
            await server.aclose()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def transport_smoke(pool_size: int = 2) -> int:
    """One EvalMult and one app circuit through a real localhost socket.

    Uses the sync :class:`~repro.service.client.FheClient` against a
    thread-hosted listener — the full stack a deployment would run, in
    one process: wire serialization, length-prefixed frames, the worker
    thread executor, tower-sharded chip execution, and the pushed
    completion callback. Both results are asserted bit-identical to
    in-process execution; the logistic-regression circuit additionally
    checks its decrypted predictions against the plaintext reference.
    """
    from repro.apps.logreg import MiniLogisticRegression
    from repro.polymath.primes import ntt_friendly_prime
    from repro.service.circuits import evaluate_circuit
    from repro.service.client import FheClient
    from repro.service.serialization import deserialize_circuit_outputs
    from repro.service.transport import ThreadedTransportServer

    params = BfvParameters.toy_rns(n=16, towers=2, tower_bits=20)
    bfv = Bfv(params, seed=2026)
    keys = bfv.keygen(relin_digit_bits=14)
    encoder = BatchEncoder(params)
    a = bfv.encrypt(encoder.encode(list(range(params.n))), keys.public)
    b = bfv.encrypt(
        encoder.encode(list(range(params.n, 2 * params.n))), keys.public
    )
    expected = serialize_ciphertext(bfv.multiply_relin(a, b, keys.relin))

    # The app-circuit leg: a compiled logistic-regression batch on its
    # own chip-native parameter set (wide enough for two multiplications).
    lr_params = BfvParameters.toy_rns(
        n=16, towers=5, tower_bits=28, t=ntt_friendly_prime(16, 21)
    )
    model = MiniLogisticRegression(params=lr_params, num_features=4, seed=11)
    rng = random.Random(3)
    samples = [[rng.randint(-3, 3) for _ in range(4)] for _ in range(3)]
    circuit = model.to_circuit(batch=len(samples))
    feature_cts = model.encrypt_features(samples)
    local = evaluate_circuit(model.bfv, model.keys.relin, circuit, feature_cts)
    expected_score = serialize_ciphertext(local["score"])

    callbacks: list[str] = []
    with ThreadedTransportServer(pool_size=pool_size) as ts:
        print(f"transport smoke: listener on {ts.host}:{ts.port} "
              f"(chip pool x{pool_size})")
        with FheClient(ts.host, ts.port) as client:
            sid = client.open_session(
                "smoke", serialize_params(params),
                relin_key=serialize_relin_key(keys.relin, params),
            )
            jid = client.submit(
                sid, JobKind.MULTIPLY,
                (serialize_ciphertext(a), serialize_ciphertext(b)),
                on_done=lambda event: callbacks.append(event.status),
            )
            wire = client.result(jid)
            lr_sid = client.open_session(
                "smoke-logreg", serialize_params(lr_params),
                relin_key=serialize_relin_key(model.keys.relin, lr_params),
            )
            lr_jid = client.submit_circuit(
                lr_sid, circuit,
                tuple(serialize_ciphertext(ct) for ct in feature_cts),
                on_done=lambda event: callbacks.append(event.status),
            )
            lr_payload = client.result(lr_jid)
        report = ts.fhe.pool_report()
    assert wire == expected, "transport result diverged from Bfv ground truth"
    outs = deserialize_circuit_outputs(lr_payload, lr_params)
    assert serialize_ciphertext(outs["score"]) == expected_score, (
        "served circuit diverged from in-process evaluation"
    )
    predictions = model.predictions_from_score(outs["score"], len(samples))
    assert predictions == model.predict_plain(samples), (
        "served predictions diverged from the plaintext reference"
    )
    assert callbacks == ["done", "done"], (
        f"expected one completion event per job, got {callbacks}"
    )
    assert report["fidelity"].get("chip") == 2, report["fidelity"]
    print("transport smoke: EvalMult over the socket is bit-identical to "
          "local ground truth, 1 completion callback, chip-native ✓")
    print(f"transport smoke: logreg circuit ({len(circuit.steps)} steps, "
          f"{len(circuit.tensor_steps)} tensors) over the socket is "
          f"bit-identical, predictions {predictions} match plaintext ✓")
    return 0


def fleet_smoke(workers: int = 2, mode: str = "process") -> int:
    """EvalMult traffic through a real worker fleet over a real socket.

    Spins up a thread-hosted listener whose default backend is a
    :class:`~repro.service.fleet.FleetBackend` of ``workers`` separate
    worker processes (each a spawned interpreter with its own chip pool
    and engine caches), pushes a small multiply/add mix through the sync
    client, and asserts every result bit-identical to local
    :class:`~repro.bfv.Bfv` ground truth — the fleet stage of
    ``tools/run_checks.sh --fleet``.
    """
    from repro.service.client import FheClient
    from repro.service.transport import ThreadedTransportServer

    params = BfvParameters.toy_rns(n=16, towers=2, tower_bits=20)
    bfv = Bfv(params, seed=2026)
    keys = bfv.keygen(relin_digit_bits=14)
    encoder = BatchEncoder(params)
    rng = random.Random(5)

    fhe = FheServer(
        fleet_size=workers, fleet_mode=mode, default_backend="fleet",
    )
    checks = []  # (job kind, operands, expected ciphertext)
    for i in range(4):
        a = bfv.encrypt(encoder.encode(
            [rng.randrange(16) for _ in range(params.n)]), keys.public)
        b = bfv.encrypt(encoder.encode(
            [rng.randrange(16) for _ in range(params.n)]), keys.public)
        if i % 2 == 0:
            checks.append((JobKind.MULTIPLY, (a, b),
                           bfv.multiply_relin(a, b, keys.relin)))
        else:
            checks.append((JobKind.ADD, (a, b), bfv.add(a, b)))

    with ThreadedTransportServer(fhe=fhe) as ts:
        print(f"fleet smoke: listener on {ts.host}:{ts.port} "
              f"(fleet x{workers}, {mode} workers)")
        with FheClient(ts.host, ts.port) as client:
            sid = client.open_session(
                "fleet-smoke", serialize_params(params),
                relin_key=serialize_relin_key(keys.relin, params),
            )
            jids = [
                client.submit(sid, kind, tuple(
                    serialize_ciphertext(ct) for ct in operands
                ))
                for kind, operands, _ in checks
            ]
            for jid, (kind, _, expected) in zip(jids, checks):
                got = deserialize_ciphertext(client.result(jid), params)
                got_pt = bfv.decrypt(got, keys.secret)
                want_pt = bfv.decrypt(expected, keys.secret)
                assert got_pt == want_pt, (
                    f"fleet {kind.value} diverged from Bfv ground truth"
                )
        report = ts.fhe.fleet_report()
    assert report["deaths"] == 0 and report["requeues"] == 0, report
    workers_used = {w["index"] for w in report["workers"] if w["jobs_done"]}
    print(f"fleet smoke: {len(checks)} jobs bit-identical across "
          f"{len(workers_used)} worker process(es), 0 deaths, 0 requeues ✓")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="CoFHEE serving layer: in-process demo, wire-transport "
                    "listener, or transport smoke test.",
    )
    parser.add_argument(
        "--listen", metavar="[HOST:]PORT",
        help="start the asyncio wire transport instead of the demo",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="transport self-test: ephemeral listener, one EvalMult "
             "round-trip, assert bit-identical",
    )
    parser.add_argument(
        "--fleet-smoke", action="store_true",
        help="fleet self-test: ephemeral listener over a 2-process "
             "worker fleet, assert bit-identical",
    )
    parser.add_argument("--pool", type=int, default=4, metavar="N",
                        help="chips in the pool backend (default 4)")
    parser.add_argument("--max-batch", type=int, default=6, metavar="N",
                        help="scheduler batch size (default 6)")
    parser.add_argument(
        "--fleet", type=int, default=0, metavar="N",
        help="with --listen: serve from a fleet of N worker processes "
             "instead of the in-process chip pool (0 disables)",
    )
    parser.add_argument(
        "--fleet-mode", choices=("process", "thread"), default="process",
        help="fleet worker isolation (default process)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=0, metavar="N",
        help="with --listen: per-connection submit window; floods stall "
             "instead of queueing unboundedly (0 disables)",
    )
    parser.add_argument(
        "--stats-interval", type=float, default=0.0, metavar="N",
        help="with --listen: print a JSON metrics snapshot every N "
             "seconds (0 disables)",
    )
    parser.add_argument(
        "--tenants", metavar="FILE",
        help="with --listen: per-tenant auth + quota table (lines of "
             "'tenant token [max_inflight] [rate] [burst]'); enables "
             "token-checked OPEN_SESSION and quota admission",
    )
    args = parser.parse_args(argv)
    exclusive = [
        flag for flag, on in
        (("--smoke", args.smoke), ("--fleet-smoke", args.fleet_smoke),
         ("--listen", bool(args.listen)))
        if on
    ]
    if len(exclusive) > 1:
        parser.error(f"{' and '.join(exclusive)} are mutually exclusive")
    if args.stats_interval and not args.listen:
        parser.error("--stats-interval requires --listen")
    if (args.fleet or args.max_inflight) and not (args.listen or args.fleet_smoke):
        parser.error("--fleet/--max-inflight require --listen")
    if args.tenants and not args.listen:
        parser.error("--tenants requires --listen")
    if args.smoke:
        return transport_smoke(pool_size=args.pool)
    if args.fleet_smoke:
        return fleet_smoke(workers=args.fleet or 2, mode=args.fleet_mode)
    if args.listen:
        return serve(args.listen, args.pool, args.max_batch,
                     stats_interval=args.stats_interval, fleet=args.fleet,
                     fleet_mode=args.fleet_mode,
                     max_inflight=args.max_inflight,
                     tenants_file=args.tenants)
    return run_demo()


def run_demo() -> int:
    print("CoFHEE serving layer demo: 3 tenants x 3 backends over one chip pool")
    client = RawClient.build()
    server = FheServer(pool_size=4, max_batch=6)
    traffic = build_traffic(client)

    per_backend_bytes = {}
    for backend in BACKENDS:
        raw_checks, app_jobs = submit_workload(server, client, backend, traffic)
        per_backend_bytes[backend] = (raw_checks, app_jobs)

    stats = server.run()
    print(f"\nprocessed {stats.jobs_completed} jobs in {len(stats.batches)} "
          f"batches ({stats.jobs_failed} failed)")

    print("\nVerification:")
    raw_results = {}
    for backend, (raw_checks, app_jobs) in per_backend_bytes.items():
        raw_results[backend] = verify_backend(
            server, client, backend, raw_checks, app_jobs
        )

    # The three backends are bit-exact: same ops, same wire bytes.
    reference = raw_results[BACKENDS[0]]
    for backend in BACKENDS[1:]:
        assert raw_results[backend] == reference, (
            f"{backend} wire bytes diverged from {BACKENDS[0]}"
        )
    print("  all backends returned bit-identical ciphertext bytes ✓")

    _print_table(
        "Throughput by backend",
        server.throughput_rows(),
        ["backend", "pool", "jobs", "wall_s", "jobs_per_s", "wall_cycles"],
    )

    rows = pool_scaling(client)
    _print_table(
        "Chip-pool scaling (identical EvalMult traffic)",
        rows,
        ["pool_size", "jobs", "wall_cycles", "total_cycles", "wall_ms"],
    )
    speedup = rows[0]["wall_cycles"] / rows[-1]["wall_cycles"]
    print(f"\npool x{rows[-1]['pool_size']} makespan is {speedup:.2f}x shorter "
          f"than x{rows[0]['pool_size']} on the same traffic ✓")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
