"""Batching scheduler: fair multi-tenant packing over compute backends.

Jobs land in per-tenant FIFO queues. Batches are formed round-robin across
tenants — one job per tenant per rotation — so a tenant flooding the queue
cannot starve a light one (the fairness property the service tests prove
with dispatch sequence numbers). A batch only packs *compatible* jobs:
same parameter digest and same requested backend, so a chip worker
programs its modulus and twiddle tables once per batch and the registry's
cached evaluation engine is shared across every job in it.

Tower sharding composes with this, one level down: the chip-pool backend
splits each batched multi-tower EvalMult into per-tower work units (see
:mod:`repro.service.towers`) and fans them out across the pool. Fairness
still holds — a 3-tower tenant's work units occupy more workers per batch,
but batch *formation* stays round-robin, so a 1-tower tenant's jobs keep
leading their own batches on schedule. :class:`ServiceStats` aggregates
both views: total cycles (work) and makespan cycles (wall time on the
pool), plus the per-batch fidelity counts that say which jobs really
executed on worker drivers.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.service.backends import Backend, BatchReport
from repro.service.jobs import Job, JobStatus
from repro.service.registry import SessionRegistry
from repro.service.telemetry import MetricsRegistry

#: A batch's compatibility key: (params digest, backend name).
BatchKey = tuple[bytes, str]


@dataclass
class ServiceStats:
    """Aggregate accounting across every dispatched batch.

    ``cache_hits`` / ``cache_misses`` count the server's content-addressed
    result cache: a hit completes the job at submit time without ever
    forming a batch (so hit jobs appear in ``jobs_completed`` but in no
    :class:`BatchReport`); a miss is a cacheable job that had to execute.

    ``dedupe_hits`` counts in-queue dedupe — cache-aware scheduling's
    submit-before-complete case: a job whose content address matches one
    already queued or running attaches to that execution as a follower
    instead of executing again, and the one result fans out to every
    attached job when the primary completes. Followers appear in
    ``jobs_submitted``/``jobs_completed`` but in no batch.

    Per-tenant settlement is split by outcome —
    ``per_tenant_completed`` / ``per_tenant_failed`` — so a tenant whose
    jobs keep failing no longer looks identical to one being served;
    :attr:`per_tenant` remains as the merged read-only view.
    """

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    dedupe_hits: int = 0
    batches: list[BatchReport] = field(default_factory=list)
    per_tenant_completed: dict[str, int] = field(default_factory=dict)
    per_tenant_failed: dict[str, int] = field(default_factory=dict)

    @property
    def per_tenant(self) -> dict[str, int]:
        """Settled jobs per tenant, completed and failed together."""
        merged = dict(self.per_tenant_completed)
        for tenant, count in self.per_tenant_failed.items():
            merged[tenant] = merged.get(tenant, 0) + count
        return merged

    def settle(self, job: Job) -> None:
        """Count one finished job (completed or failed) for its tenant."""
        if job.status is JobStatus.FAILED:
            self.jobs_failed += 1
            bucket = self.per_tenant_failed
        else:
            self.jobs_completed += 1
            bucket = self.per_tenant_completed
        bucket[job.tenant] = bucket.get(job.tenant, 0) + 1

    def record(self, report: BatchReport, jobs: list[Job]) -> None:
        self.batches.append(report)
        for job in jobs:
            self.settle(job)

    @property
    def total_cycles(self) -> int:
        return sum(b.cycles for b in self.batches)

    @property
    def makespan_cycles(self) -> int:
        """Sum of per-batch makespans: modeled wall time on the chip pool.

        Each batch's makespan is its largest single-worker share; batches
        execute one after another, so their makespans add. With tower
        sharding this drops below :attr:`total_cycles` (the work does not
        shrink — it spreads).
        """
        return sum(b.makespan_cycles for b in self.batches)

    @property
    def pipelined_makespan_cycles(self) -> int:
        """Pool wall time with cross-batch tower pipelining.

        Each chip-pool batch's extent beyond the previous batch's gather
        barrier; a batch whose first tower level fit entirely into the
        previous batch's straggler window contributes less than its own
        :attr:`makespan_cycles`. Backends that do not pipeline report 0
        and fall back to their makespan.
        """
        return sum(
            b.pipelined_makespan_cycles or b.makespan_cycles
            for b in self.batches
        )

    @property
    def overlap_cycles(self) -> int:
        """Total tower cycles started inside a previous batch's gather window."""
        return sum(b.overlap_cycles for b in self.batches)

    @property
    def fidelity(self) -> dict[str, int]:
        """Aggregate execution-path counts across every batch.

        Keys are the :class:`~repro.service.backends.BatchReport` fidelity
        labels: ``"chip"`` (tensor ran tower-by-tower on worker drivers),
        ``"model"`` (DAG/cost-model pricing), ``"relin_engine"``
        (relinearization executed as batched chip-side key-switch work
        units), ``"relin_model"`` (tail model-priced only — params the
        engine cannot carry).
        """
        totals: dict[str, int] = {}
        for b in self.batches:
            for path, count in b.fidelity.items():
                totals[path] = totals.get(path, 0) + count
        return totals


class BatchingScheduler:
    """Round-robin fair batching over per-tenant queues.

    Args:
        registry: the shared session registry.
        backends: backend instances keyed by name; ``default`` names the
            one used when a job does not request a backend.
        max_batch: largest number of jobs packed into one batch.
    """

    def __init__(self, registry: SessionRegistry, backends: dict[str, Backend],
                 default: str, max_batch: int = 8):
        if max_batch < 1:
            raise ValueError("batches need room for at least one job")
        if default not in backends:
            raise ValueError(f"default backend {default!r} not in {sorted(backends)}")
        self.registry = registry
        self.backends = backends
        self.default = default
        self.max_batch = max_batch
        self._queues: dict[str, deque[Job]] = {}
        self._rotation: deque[str] = deque()
        self._submit_seq = 0
        self._dispatch_seq = 0
        self._batch_ids = 0
        #: Cross-batch pipelining: the next batch, formed while the
        #: previous one was still executing (its stragglers gathering),
        #: as ``(formed, rotation_snapshot, plan_start, plan_end)``.
        self._preplanned: tuple | None = None
        self.stats = ServiceStats()
        #: Metrics sink (set by :class:`~repro.service.server.FheServer`;
        #: ``None`` leaves the scheduler un-instrumented for direct use).
        self.metrics: MetricsRegistry | None = None

    # -- intake -------------------------------------------------------------

    def submit(self, job: Job) -> Job:
        self.registry.get(job.session_id)  # fail fast on unknown sessions
        if not job.backend:
            job.backend = self.default
        if job.backend not in self.backends:
            raise ValueError(
                f"unknown backend {job.backend!r} (have {sorted(self.backends)})"
            )
        job.metrics.submitted_seq = self._submit_seq
        self._submit_seq += 1
        if job.tenant not in self._queues:
            self._queues[job.tenant] = deque()
            self._rotation.append(job.tenant)
        self._queues[job.tenant].append(job)
        self.stats.jobs_submitted += 1
        if self.metrics is not None:
            self.metrics.gauge(
                "repro_queue_depth", "jobs queued and not yet dispatched"
            ).set(self.pending)
        return job

    @property
    def pending(self) -> int:
        queued = sum(len(q) for q in self._queues.values())
        if self._preplanned is not None:
            queued += len(self._preplanned[0][1])
        return queued

    def _shed_expired(self) -> int:
        """Fail still-queued jobs whose deadline already passed.

        Runs at batch-plan time, before any batch is formed: an expired
        job never costs a placement or a worker round trip — it settles
        immediately with the typed ``deadline expired`` failure the
        client maps to a terminal :class:`JobFailedError` kind.
        """
        now = time.monotonic()
        shed = 0
        for tenant, queue in self._queues.items():
            if not any(j.deadline is not None and j.deadline <= now
                       for j in queue):
                continue
            keep: deque[Job] = deque()
            for job in queue:
                if job.deadline is None or job.deadline > now:
                    keep.append(job)
                    continue
                job.fail("deadline expired before dispatch")
                self.stats.settle(job)
                shed += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "repro_deadline_shed_total",
                        "jobs failed past their deadline",
                        stage="queued", tenant=job.tenant,
                    ).inc()
                    self.metrics.counter(
                        "repro_jobs_settled_total", "jobs settled by outcome",
                        tenant=job.tenant, outcome="failed",
                    ).inc()
            self._queues[tenant] = keep
        if shed and self.metrics is not None:
            self.metrics.gauge(
                "repro_queue_depth", "jobs queued and not yet dispatched"
            ).set(self.pending)
        return shed

    # -- batch formation ------------------------------------------------------

    def _job_key(self, job: Job) -> BatchKey:
        return (self.registry.get(job.session_id).digest, job.backend)

    def next_batch(self) -> tuple[BatchKey, list[Job]] | None:
        """Form the next batch, or ``None`` when every queue is empty.

        The rotation pointer advances one tenant per call, and the batch's
        compatibility key is fixed by that tenant's head job — so over
        consecutive calls every tenant's work leads a batch, regardless of
        how many jobs anyone else has queued. Within the batch, jobs are
        taken one per tenant per rotation (only matching queue heads), up
        to ``max_batch``.
        """
        if self.pending == 0:
            return None
        # Advance the rotation to the next tenant with pending work.
        while not self._queues[self._rotation[0]]:
            self._rotation.rotate(-1)
        lead = self._rotation[0]
        key = self._job_key(self._queues[lead][0])
        self._rotation.rotate(-1)  # next call starts at the following tenant
        batch: list[Job] = []
        # Round-robin passes starting at the lead tenant.
        order = [lead] + [t for t in self._rotation if t != lead]
        progress = True
        while progress and len(batch) < self.max_batch:
            progress = False
            for tenant in order:
                queue = self._queues[tenant]
                if queue and self._job_key(queue[0]) == key:
                    batch.append(queue.popleft())
                    progress = True
                    if len(batch) >= self.max_batch:
                        break
        return key, batch

    # -- cross-batch pre-planning ---------------------------------------------

    def _preplan(self) -> None:
        """Form the next batch while the current one is still executing.

        This is the scheduler half of cross-batch tower pipelining: batch
        N+1 is planned during batch N's execution window (while N's
        straggler towers are still gathering), so the chip pool can start
        N+1's level-0 tower units in its workers' idle headroom below the
        gather barrier. The plan is provisional — jobs leave their queues,
        but fairness state is snapshotted so a stale plan (a deadline
        expiring before dispatch) rolls back losslessly.
        """
        if self._preplanned is not None or self.pending == 0:
            return
        rotation = tuple(self._rotation)
        plan_start = time.perf_counter()
        formed = self.next_batch()
        plan_end = time.perf_counter()
        self._preplanned = (formed, rotation, plan_start, plan_end)

    def _rollback_preplan(self) -> None:
        """Return a provisional batch to its queues, restoring fairness.

        Jobs go back to the *front* of their tenant queues in reverse
        take order (queue order is exactly as before the plan), and the
        rotation pointer returns to its snapshot — tenants that appeared
        after the snapshot keep their place at the tail.
        """
        formed, rotation, _start, _end = self._preplanned
        self._preplanned = None
        _key, jobs = formed
        for job in reversed(jobs):
            self._queues[job.tenant].appendleft(job)
        fresh = [t for t in self._rotation if t not in rotation]
        self._rotation = deque(list(rotation) + fresh)

    def _take_preplanned(self):
        """The pre-planned batch, unless stale; ``None`` re-plans normally.

        The deadline contract survives pipelining: ``_shed_expired`` never
        sees pre-planned jobs, so a plan holding any job whose deadline
        has passed is rolled back (and the queues re-shed) instead of
        dispatching expired work.
        """
        if self._preplanned is None:
            return None
        formed, _rotation, plan_start, plan_end = self._preplanned
        now = time.monotonic()
        if any(j.deadline is not None and j.deadline <= now
               for j in formed[1]):
            self._rollback_preplan()
            self._shed_expired()
            return None
        self._preplanned = None
        return formed, plan_start, plan_end

    # -- dispatch ---------------------------------------------------------------

    def _async_backends(self) -> list[Backend]:
        return [b for b in self.backends.values() if b.supports_async]

    def _record_settled(self, report: BatchReport, jobs: list[Job],
                        execute_seconds: float) -> None:
        """Shared settlement accounting for sync and async batches."""
        self.stats.record(report, jobs)
        if self.metrics is None:
            return
        m = self.metrics
        m.histogram(
            "repro_batch_execute_seconds",
            "measured wall seconds per executed batch",
            backend=report.backend,
        ).observe(execute_seconds)
        for job in jobs:
            outcome = (
                "failed" if job.status is JobStatus.FAILED else "completed"
            )
            m.counter(
                "repro_jobs_settled_total", "jobs settled by outcome",
                tenant=job.tenant, outcome=outcome,
            ).inc()

    def _record_dispatched(self, backend_name: str, jobs: list[Job]) -> None:
        if self.metrics is None:
            return
        m = self.metrics
        m.counter(
            "repro_batches_total", "batches dispatched",
            backend=backend_name,
        ).inc()
        m.histogram(
            "repro_batch_occupancy", "jobs packed per batch",
            buckets=(1, 2, 3, 4, 6, 8, 12, 16, 24, 32),
            backend=backend_name,
        ).observe(len(jobs))
        m.gauge(
            "repro_queue_depth", "jobs queued and not yet dispatched"
        ).set(self.pending)

    def _harvest_async(self, timeout: float = 0.0) -> BatchReport | None:
        """Collect completed async batches; returns the last report."""
        last = None
        for backend in self._async_backends():
            for report, jobs in backend.poll(timeout):
                self._record_settled(report, jobs, report.seconds)
                last = report
        return last

    def step(self) -> BatchReport | None:
        """Advance the service by one settled batch.

        Synchronous backends execute their batch inline and return its
        report. Asynchronous backends (the worker fleet) are *dispatched*
        without blocking — batch after batch, so work for different
        params digests overlaps across workers — and their completions
        are harvested here; a call returns the next settled batch report,
        blocking only when everything is dispatched and still in flight.
        ``None`` means truly idle: no queued jobs and nothing in flight.
        """
        self._shed_expired()
        harvested = self._harvest_async()
        if harvested is not None:
            return harvested
        while self.pending > 0:
            taken = self._take_preplanned()
            if taken is not None:
                formed, plan_start, plan_end = taken
            else:
                if self.pending == 0:  # a stale pre-plan was fully shed
                    break
                plan_start = time.perf_counter()
                formed = self.next_batch()
                plan_end = time.perf_counter()
            (_, backend_name), jobs = formed
            backend = self.backends[backend_name]
            self._batch_ids += 1
            dispatched_at = time.perf_counter()
            for job in jobs:
                job.status = JobStatus.RUNNING
                job.metrics.dispatched_seq = self._dispatch_seq
                self._dispatch_seq += 1
                trace = job.trace
                if trace.enabled:
                    # queue_wait spans submit settling -> batch formation;
                    # batch_plan is the next_batch call that packed the
                    # job, charged to every job in the batch (their wall
                    # clocks all tick through it). A pre-planned batch
                    # formed during the previous batch's execution — the
                    # stretch from plan to dispatch is time waiting on
                    # that batch, marked batch_wait so the pipeline
                    # window stays attributed.
                    if trace.queued_at is not None:
                        trace.mark("queue_wait", trace.queued_at, plan_start)
                    trace.mark("batch_plan", plan_start, plan_end)
                    if taken is not None:
                        trace.mark("batch_wait", plan_end, dispatched_at)
            if backend.supports_async:
                backend.dispatch_batch(self._batch_ids, jobs, self.registry)
                self._record_dispatched(backend_name, jobs)
                continue
            # Pipeline: plan batch N+1 before batch N executes, so its
            # formation overlaps N's execution window and the chip pool
            # sees back-to-back batches it can overlap at the barrier.
            self._preplan()
            report = backend.execute_batch(self._batch_ids, jobs, self.registry)
            executed = time.perf_counter()
            self._record_dispatched(backend_name, jobs)
            self._record_settled(report, jobs, executed - plan_end)
            return report
        # Every queue is drained; wait on whatever the fleet still owes.
        while True:
            harvested = self._harvest_async(0.05)
            if harvested is not None:
                return harvested
            if not any(b.in_flight for b in self._async_backends()):
                return None

    def run_all(self) -> ServiceStats:
        """Drain every queue (and every in-flight async batch)."""
        while self.step() is not None:
            pass
        return self.stats
