"""Encrypted-job model: what tenants submit and what comes back.

A :class:`Job` is one unit of queued work: a raw homomorphic operation
on uploaded ciphertexts (add/sub/multiply/square/relinearize/rotate), an
**app circuit** (a compiled multi-step encrypted program — see
:mod:`repro.service.circuits` — expanded by the backends into the same
per-op/per-tower work units), or a legacy in-process application payload
(a CryptoNets inference or a logistic-regression batch verified against
its plaintext reference). Jobs carry their own metrics so the serving
layer can report per-job latency alongside the aggregate throughput
tables.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from repro.bfv.scheme import Ciphertext
from repro.service.circuits import Circuit
from repro.service.telemetry import new_trace


class JobKind(Enum):
    """The operation a job requests."""

    ADD = "add"
    SUB = "sub"
    MULTIPLY = "multiply"  # Eq. 4 tensor + relinearization (if key present)
    SQUARE = "square"
    RELINEARIZE = "relinearize"
    ROTATE = "rotate"
    CIRCUIT = "circuit"  # app circuit: multi-step program over the wire
    LOGREG = "logreg"  # app-level: MiniLogisticRegression batch
    CRYPTONETS = "cryptonets"  # app-level: MiniCryptoNets inference

    @property
    def is_app(self) -> bool:
        """In-process application kinds (payload never crosses the wire)."""
        return self in (JobKind.LOGREG, JobKind.CRYPTONETS)


#: Operand count per raw-op kind (app jobs take a payload instead).
OPERAND_ARITY = {
    JobKind.ADD: 2,
    JobKind.SUB: 2,
    JobKind.MULTIPLY: 2,
    JobKind.SQUARE: 1,
    JobKind.RELINEARIZE: 1,
    JobKind.ROTATE: 1,
}


class JobStatus(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class JobMetrics:
    """Per-job accounting filled in by the backend that executed it.

    ``cycles`` is chip-pool cycle accounting (0 for CPU-side backends);
    ``seconds`` is the backend's latency estimate or measurement for this
    job alone. ``submitted_seq``/``dispatched_seq`` are global sequence
    numbers the fairness tests use to prove no tenant starves.

    Tower-sharded chip execution additionally reports, per job:
    ``tower_cycles`` (Algorithm 3 cycles per RNS tower, index-aligned with
    the session's CoFHEE basis), ``tower_workers`` (which pool worker ran
    each tower), ``relin_cycles`` (the model-priced relinearization tail,
    so ``cycles == sum(tower_cycles) + relin_cycles`` on the chip path),
    and ``fidelity`` — ``"chip"`` when every tower of the Eq. 4 tensor ran
    through a worker's driver with a mod-q cross-check, ``"model"`` when
    cycles came from the compiled DAG estimate. ``relin_fidelity`` is
    ``"model"`` when a relinearization was priced (never chip-executed)
    rather than silently folded in.

    Circuit jobs aggregate across their tensor steps: ``tower_cycles``
    sums each tower's cycles over every chip-executed tensor,
    ``tower_workers`` lists the *distinct* workers that executed them
    (a 12-tensor circuit typically touches the whole pool), and
    ``relin_cycles`` totals one model-priced key-switch tail per tensor
    step.

    Jobs completed without executing record how: ``backend == "cache"``
    for content-addressed result-cache hits, ``backend == "dedupe"`` for
    in-queue dedupe followers — ``dedupe_of`` then names the primary job
    whose single execution produced this job's result.
    """

    backend: str = ""
    worker: int = -1
    batch_id: int = -1
    cycles: int = 0
    seconds: float = 0.0
    submitted_seq: int = -1
    dispatched_seq: int = -1
    tower_cycles: tuple[int, ...] = ()
    tower_workers: tuple[int, ...] = ()
    relin_cycles: int = 0
    fidelity: str = ""
    relin_fidelity: str = ""
    dedupe_of: str = ""
    #: Circuit jobs only: the optimizer's per-pass rewrite report
    #: (pass name -> steps eliminated, plus steps_before/steps_after and
    #: the optimized unit counts). ``None`` for non-circuit jobs.
    rewrite: dict | None = None


_job_ids = itertools.count(1)


@dataclass
class Job:
    """One queued unit of encrypted work."""

    session_id: str
    tenant: str
    kind: JobKind
    operands: list[Ciphertext] = field(default_factory=list)
    steps: int = 0  # rotation amount (ROTATE only)
    payload: object = None  # Circuit (CIRCUIT) or app inputs (samples/images)
    backend: str = ""  # requested backend name ("" = service default)
    #: The operands' original framed wire bytes when the job arrived over
    #: the transport (index-aligned with ``operands``, empty otherwise).
    #: The fleet forwards these verbatim instead of re-serializing.
    wire_operands: tuple[bytes, ...] = ()
    #: Absolute monotonic-clock instant past which the job must not be
    #: dispatched (and is reaped if already in flight). ``None`` = no
    #: deadline. Stamped by the server from the wire's relative budget.
    deadline: float | None = None
    job_id: str = field(default_factory=lambda: f"j{next(_job_ids):05d}")
    status: JobStatus = JobStatus.QUEUED
    result: object = None  # Ciphertext (raw op), {name: Ciphertext}
    # (circuit), or the app output dict
    error: str | None = None
    metrics: JobMetrics = field(default_factory=JobMetrics)
    #: Monotonic-clock phase spans (the shared NULL_TRACE when
    #: ``REPRO_TRACE=off``); see :mod:`repro.service.telemetry`.
    trace: object = field(default_factory=new_trace, repr=False)

    def __post_init__(self):
        if self.kind is JobKind.CIRCUIT:
            if not isinstance(self.payload, Circuit):
                raise ValueError(
                    "circuit jobs carry a Circuit payload, got "
                    f"{type(self.payload).__name__}"
                )
            if len(self.operands) != len(self.payload.inputs):
                raise ValueError(
                    f"circuit {self.payload.name!r} takes "
                    f"{len(self.payload.inputs)} input ciphertext(s) "
                    f"({', '.join(self.payload.inputs)}), "
                    f"got {len(self.operands)}"
                )
        elif self.kind.is_app:
            if self.operands:
                raise ValueError(f"{self.kind.value} jobs take a payload, not operands")
            if self.payload is None:
                raise ValueError(f"{self.kind.value} jobs need a payload")
        else:
            arity = OPERAND_ARITY[self.kind]
            if len(self.operands) != arity:
                raise ValueError(
                    f"{self.kind.value} takes {arity} operand(s), "
                    f"got {len(self.operands)}"
                )

    @property
    def done(self) -> bool:
        return self.status in (JobStatus.DONE, JobStatus.FAILED)

    def fail(self, message: str) -> None:
        self.status = JobStatus.FAILED
        self.error = message
        self.trace.stamp_done()

    def finish(self, result: object) -> None:
        self.result = result
        self.status = JobStatus.DONE
        self.trace.stamp_done()
