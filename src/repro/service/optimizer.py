"""Server-side circuit optimizer: semantics-preserving SSA rewrites.

Circuits used to execute exactly as written — every submitted step
became work units, including duplicated subtrees, multiplies by one,
and a full relinearization after every single tensor. This module is
the pass pipeline the server runs at submit time (the tf-encrypted
compiler RFC's "HE programs are a compiled dialect" shape, scaled to
our op set):

``constant_fold``
    Plaintext algebra the ciphertext ring makes *byte-exact*: multiply
    by scalar 1 elided, scalar-multiply chains collapsed, multiply
    by 0 recognized as a known-zero ciphertext and folded out of
    adds/subs/MACs, MAC by scalar 0 elided, and relinearization of an
    already degree-2 value elided (the scheme passes size-2 through as
    a copy).

``cse``
    Common-subexpression elimination by value numbering: two steps with
    the same op and the same (resolved) operands produce byte-identical
    ciphertexts, because evaluation is deterministic — so the second
    computation is replaced by the first's register. Commutative ops
    (``add``, ``mul``, ``mul_relin``) canonicalize operand order;
    constants key by value, not table index.

``dce``
    Dead-register elimination: a backward liveness walk from the named
    outputs drops every step whose result is never consumed (including
    steps orphaned by the passes above).

``relin_lazy`` (opt-in; see *levels* below)
    Lazy/fused relinearization: eager ``mul_relin``/``square_relin``
    steps split into a bare Eq. 4 tensor plus a *deferred*
    ``relinearize``, sunk past linear combinations of degree-2
    products so an add-of-products tree key-switches once instead of
    once per multiply. Deferred relins are materialized just-in-time
    before consumers that require degree 2 (tensor operands, rotations)
    and as one trailing run before the outputs — consecutive runs batch
    through :meth:`~repro.bfv.scheme.Bfv.relinearize_many`. The pass is
    accepted only when it strictly reduces the circuit's key-switch
    count, so "optimized" never means "more work".

**Levels.** ``none`` passes the circuit through untouched. ``exact``
(the server default) runs only the byte-exact passes: the optimized
circuit's outputs are *bit-identical* to the submitted circuit's on
every backend, so content-addressed caching, dedupe, and the served ==
in-process invariant are all preserved. ``lazy`` adds the
relinearization restructuring: outputs decrypt to the same plaintexts
(noise actually improves — fewer key-switch noise injections) and are
bit-identical *across backends*, but not to the unoptimized execution,
so the server keys its result cache by level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.service.circuits import (
    CONST_PLAIN,
    CONST_SCALAR,
    Circuit,
    CircuitConst,
    CircuitStep,
    OP_ADD,
    OP_ADD_CONST,
    OP_MAC_CONST,
    OP_MUL,
    OP_MUL_CONST,
    OP_MUL_RELIN,
    OP_RELINEARIZE,
    OP_ROTATE_COLUMNS,
    OP_ROTATE_ROWS,
    OP_SPECS,
    OP_SQUARE,
    OP_SQUARE_RELIN,
    OP_SUB,
    RELIN_OPS,
    ROTATION_OPS,
    TENSOR_OPS,
    _SCALAR_LIMIT,
)

#: Optimization levels, weakest to strongest guarantees traded for work.
LEVEL_NONE = "none"
LEVEL_EXACT = "exact"
LEVEL_LAZY = "lazy"
LEVELS = (LEVEL_NONE, LEVEL_EXACT, LEVEL_LAZY)

#: What the server applies unless configured otherwise: every rewrite
#: here is byte-exact, so default-path serving stays bit-identical to
#: the submitted program.
DEFAULT_LEVEL = LEVEL_EXACT

#: Ops whose two register operands commute byte-exactly: ``Bfv.add``
#: pads componentwise (a+b == b+a per coefficient) and the Eq. 4 tensor
#: is symmetric in its operands.
_COMMUTATIVE = frozenset({OP_ADD, OP_MUL, OP_MUL_RELIN})

#: Fixed-point safety valve; real circuits settle in 2-3 iterations.
_MAX_ITERATIONS = 16


class _Consts:
    """Value-interned constant table for a circuit under construction."""

    def __init__(self):
        self.table: list[CircuitConst] = []
        self._index: dict[tuple, int] = {}

    def key_of(self, const: CircuitConst) -> tuple:
        if const.kind == CONST_SCALAR:
            return (CONST_SCALAR, const.scalar)
        return (CONST_PLAIN, const.coeffs)

    def intern(self, const: CircuitConst) -> int:
        key = self.key_of(const)
        if key not in self._index:
            self._index[key] = len(self.table)
            self.table.append(const)
        return self._index[key]


@dataclass
class _Builder:
    """Append-only step emitter that tracks degree and zero-ness."""

    num_inputs: int
    consts: _Consts = field(default_factory=_Consts)
    steps: list[CircuitStep] = field(default_factory=list)
    degrees: list[int] = field(default_factory=list)
    zeros: set[int] = field(default_factory=set)

    def __post_init__(self):
        self.degrees = [2] * self.num_inputs

    def emit(self, op: int, args: tuple[int, ...]) -> int:
        self.steps.append(CircuitStep(op=op, args=args))
        layout = OP_SPECS[op][1]
        reg_degs = [
            self.degrees[a] for a, role in zip(args, layout) if role == "r"
        ]
        if op in (OP_MUL, OP_SQUARE):
            self.degrees.append(3)
        elif op in RELIN_OPS:  # fused or deferred key switch
            self.degrees.append(2)
        else:
            self.degrees.append(max(reg_degs))
        return self.num_inputs + len(self.steps) - 1


def _scalar_of(consts, idx):
    """The scalar value of constant ``idx``, or None if packed."""
    const = consts[idx]
    return const.scalar if const.kind == CONST_SCALAR else None


def _is_zero_const(const: CircuitConst) -> bool:
    if const.kind == CONST_SCALAR:
        return const.scalar == 0
    return all(c == 0 for c in const.coeffs)


def _fold_cse(circuit: Circuit) -> tuple[Circuit, int, int]:
    """One forward walk: byte-exact constant folds + value-numbering CSE.

    Returns ``(circuit, folded, deduped)``. Folded steps alias their
    dst to an existing register; deduped steps alias to the first
    identical computation. Steps that become dead stay in place for
    :func:`_dce` to count and collect.
    """
    out = _Builder(num_inputs=len(circuit.inputs))
    new_of: list[int] = list(range(len(circuit.inputs)))
    #: new register -> (op, resolved args with const *values*) of the
    #: step that defined it, for chain rewrites; and the CSE table.
    def_of: dict[int, tuple] = {}
    seen: dict[tuple, int] = {}
    folded = deduped = 0

    def resolve(step: CircuitStep) -> tuple[list, str]:
        layout = OP_SPECS[step.op][1]
        resolved = []
        for arg, role in zip(step.args, layout):
            if role == "r":
                resolved.append(new_of[arg])
            elif role == "c":
                resolved.append(circuit.consts[arg])
            else:
                resolved.append(arg)
        return resolved, layout

    for step in circuit.steps:
        args, layout = resolve(step)
        op = step.op

        # ---- byte-exact folds (alias dst to an existing register) ----
        alias = None
        if op == OP_MUL_CONST:
            a, const = args
            scalar = const.scalar if const.kind == CONST_SCALAR else None
            if scalar == 1:
                alias = a
            elif scalar is not None:
                # Collapse mul_const(mul_const(x, s1), s2) -> x * (s1*s2):
                # (x*s1 mod q)*s2 and x*(s1*s2) are the same residue.
                prev = def_of.get(a)
                if prev is not None and prev[0] == OP_MUL_CONST:
                    inner_const = prev[1][1]
                    if inner_const.kind == CONST_SCALAR:
                        product = scalar * inner_const.scalar
                        if -_SCALAR_LIMIT <= product < _SCALAR_LIMIT:
                            args = [
                                prev[1][0],
                                CircuitConst(
                                    kind=CONST_SCALAR, scalar=product
                                ),
                            ]
        elif op == OP_MAC_CONST:
            acc, a, const = args
            if const.kind == CONST_SCALAR and const.scalar == 0:
                # acc + x*0: the zero term pads acc componentwise only
                # when x's degree fits inside acc's.
                if out.degrees[a] <= out.degrees[acc]:
                    alias = acc
            elif acc in out.zeros and out.degrees[acc] <= out.degrees[a]:
                op, args = OP_MUL_CONST, [a, const]
        elif op in (OP_ADD, OP_SUB):
            a, b = args
            if b in out.zeros and out.degrees[b] <= out.degrees[a]:
                alias = a
            elif (
                op == OP_ADD
                and a in out.zeros
                and out.degrees[a] <= out.degrees[b]
            ):
                alias = b
        elif op == OP_RELINEARIZE:
            if out.degrees[args[0]] == 2:  # the scheme copies size-2 inputs
                alias = args[0]

        if alias is not None:
            new_of.append(alias)
            folded += 1
            continue

        # ---- value numbering (CSE) ----
        key_args = tuple(
            out.consts.key_of(a) if isinstance(a, CircuitConst) else a
            for a in args
        )
        if op in _COMMUTATIVE and key_args[0] > key_args[1]:
            key_args = (key_args[1], key_args[0])
            args = [args[1], args[0]]
        key = (op, key_args)
        hit = seen.get(key)
        if hit is not None:
            new_of.append(hit)
            deduped += 1
            continue

        emit_args = tuple(
            out.consts.intern(a) if isinstance(a, CircuitConst) else a
            for a in args
        )
        dst = out.emit(op, emit_args)
        seen[key] = dst
        def_of[dst] = (op, args)
        new_of.append(dst)
        if (
            op == OP_MUL_CONST
            and _is_zero_const(args[1])
        ) or (op in (OP_ADD, OP_SUB) and all(a in out.zeros for a in args)):
            out.zeros.add(dst)

    if not out.steps:  # degenerate: everything folded to the inputs
        return circuit, 0, 0
    rebuilt = Circuit(
        name=circuit.name,
        inputs=circuit.inputs,
        consts=tuple(out.consts.table),
        steps=tuple(out.steps),
        outputs=tuple((name, new_of[reg]) for name, reg in circuit.outputs),
    )
    if rebuilt == circuit:
        return circuit, folded, deduped
    return rebuilt, folded, deduped


def _dce(circuit: Circuit) -> tuple[Circuit, int]:
    """Drop steps whose results never reach an output. Returns count."""
    base = len(circuit.inputs)
    live: set[int] = set()
    stack = [reg for _, reg in circuit.outputs]
    while stack:
        reg = stack.pop()
        if reg in live or reg < base:
            continue
        live.add(reg)
        step = circuit.steps[reg - base]
        layout = OP_SPECS[step.op][1]
        stack.extend(
            a for a, role in zip(step.args, layout) if role == "r"
        )
    keep = [i for i in range(len(circuit.steps)) if base + i in live]
    removed = len(circuit.steps) - len(keep)
    if removed == 0 or not keep:
        return circuit, 0
    remap = {r: r for r in range(base)}
    for pos, i in enumerate(keep):
        remap[base + i] = base + pos
    steps = []
    for i in keep:
        step = circuit.steps[i]
        layout = OP_SPECS[step.op][1]
        steps.append(CircuitStep(
            op=step.op,
            args=tuple(
                remap[a] if role == "r" else a
                for a, role in zip(step.args, layout)
            ),
        ))
    rebuilt = Circuit(
        name=circuit.name,
        inputs=circuit.inputs,
        consts=circuit.consts,
        steps=tuple(steps),
        outputs=tuple(
            (name, remap[reg]) for name, reg in circuit.outputs
        ),
    )
    return rebuilt, removed


def _lazify(circuit: Circuit) -> tuple[Circuit, int]:
    """Split eager tensor+relin steps and defer the key switches.

    Every ``mul_relin``/``square_relin`` becomes a bare tensor; every
    explicit ``relinearize`` is deferred too. Degree-3 values flow
    through linear combinations untouched and are key-switched
    just-in-time (once per value, cached) before degree-2-requiring
    consumers, with one trailing batchable run for the outputs. The
    rewrite is accepted only when it strictly reduces the circuit's
    relinearization count — otherwise the input is returned unchanged.
    """
    relins_before = sum(
        1 for step in circuit.steps if step.op in RELIN_OPS
    )
    if relins_before == 0:
        return circuit, 0
    out = _Builder(num_inputs=len(circuit.inputs))
    new_of: list[int] = list(range(len(circuit.inputs)))
    relined: dict[int, int] = {}

    def force(reg: int) -> int:
        """The degree-2 version of a register, key-switching if needed."""
        if out.degrees[reg] == 2:
            return reg
        if reg not in relined:
            relined[reg] = out.emit(OP_RELINEARIZE, (reg,))
        return relined[reg]

    for step in circuit.steps:
        layout = OP_SPECS[step.op][1]
        args = [
            new_of[a] if role == "r" else a
            for a, role in zip(step.args, layout)
        ]
        if step.op in (OP_MUL_RELIN, OP_MUL):
            a, b = force(args[0]), force(args[1])
            new_of.append(out.emit(OP_MUL, (a, b)))
        elif step.op in (OP_SQUARE_RELIN, OP_SQUARE):
            new_of.append(out.emit(OP_SQUARE, (force(args[0]),)))
        elif step.op == OP_RELINEARIZE:
            new_of.append(args[0])  # defer; force() materializes later
        elif step.op in ROTATION_OPS:
            new_of.append(out.emit(step.op, (force(args[0]), *args[1:])))
        else:
            new_of.append(out.emit(step.op, tuple(args)))

    outputs = tuple(
        (name, force(new_of[reg])) for name, reg in circuit.outputs
    )
    relins_after = sum(
        1 for step in out.steps if step.op in RELIN_OPS
    )
    if relins_after >= relins_before:
        return circuit, 0
    rebuilt = Circuit(
        name=circuit.name,
        inputs=circuit.inputs,
        consts=circuit.consts,
        steps=tuple(out.steps),
        outputs=outputs,
    )
    return rebuilt, relins_before - relins_after


def optimize_circuit(
    circuit: Circuit, level: str = DEFAULT_LEVEL
) -> tuple[Circuit, dict]:
    """Run the pass pipeline to a fixed point; returns the rewrite report.

    The report maps each pass name to the number of steps (or, for
    ``relin_lazy``, key switches) it eliminated, plus summary totals the
    benchmarks and :class:`~repro.service.jobs.JobMetrics` surface:
    ``steps_before``/``steps_after`` and the optimized circuit's
    ``tensor_units``/``relin_units``/``rotation_units``. Optimizing an
    already-optimized circuit is a no-op (the differential suite pins
    this), so re-submission of an optimized program is stable.
    """
    if level not in LEVELS:
        raise ValueError(
            f"unknown optimization level {level!r} (one of {LEVELS})"
        )
    report = {
        "level": level,
        "constant_fold": 0, "cse": 0, "dce": 0, "relin_lazy": 0,
        "steps_before": len(circuit.steps),
    }
    current = circuit
    if level != LEVEL_NONE:
        for _ in range(_MAX_ITERATIONS):
            previous = current
            current, folded, deduped = _fold_cse(current)
            report["constant_fold"] += folded
            report["cse"] += deduped
            current, removed = _dce(current)
            report["dce"] += removed
            if level == LEVEL_LAZY:
                current, lazied = _lazify(current)
                report["relin_lazy"] += lazied
            if current == previous:
                break
    counts = current.op_counts()
    report["steps_after"] = len(current.steps)
    report["tensor_units"] = counts["ct_ct_mults"]
    report["relin_units"] = counts["relins"]
    report["rotation_units"] = counts["rotations"]
    return current, report
