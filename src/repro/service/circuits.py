"""App circuits: multi-step encrypted programs the service can execute.

Until this module, the wire could only carry *single* homomorphic ops —
the paper's Section VI-C applications (logistic regression, CryptoNets)
ran in-process only, because their hundreds of chained operations had no
encoding. A :class:`Circuit` is that encoding's in-memory form: a small
SSA register program over ciphertexts whose description travels to the
server (the tf-encrypted "computation travels, runtime schedules" model)
and is expanded by the backends into the existing per-op / per-tower
work units.

**Register model.** A circuit has named ciphertext inputs, a table of
plaintext constants, a step list, and named outputs. Registers are
append-only: input ``i`` occupies register ``i``, and step ``k`` writes
register ``num_inputs + k`` — so a step can only reference values that
already exist, the step list is its own topological order, and the
dependency edges the chip-pool scheduler needs fall out of the indices.

**Step ops** (the Section VI-C building blocks):

======================  =====================================================
``OP_ADD``              ``dst = a + b`` (ct+ct)
``OP_SUB``              ``dst = a - b`` (ct+ct)
``OP_ADD_CONST``        ``dst = a + const`` (packed plaintext)
``OP_MUL_CONST``        ``dst = a * const`` (packed plaintext or scalar)
``OP_MAC_CONST``        ``dst = acc + a * const`` (the ct*pt multiply-
                        accumulate every dense/conv layer is made of)
``OP_MUL_RELIN``        ``dst = relinearize(a * b)`` (Eq. 4 tensor + relin)
``OP_SQUARE_RELIN``     ``dst = relinearize(a^2)`` (the CryptoNets
                        activation)
======================  =====================================================

Constants come in two kinds: ``CONST_SCALAR`` (a signed integer applied
with :meth:`~repro.bfv.scheme.Bfv.multiply_scalar` — layer weights) and
``CONST_PLAIN`` (an already-encoded plaintext polynomial mod ``t`` —
SIMD-packed biases). Scalars multiply only; packed plaintexts add or
multiply.

The wire encoding lives in :mod:`repro.service.serialization`
(``serialize_circuit`` / ``deserialize_circuit``, tag ``0x07``) and is
specified byte-for-byte in ``docs/wire-protocol.md``. Secret keys still
never appear: a circuit references the session's *evaluation* keys only
(every ``OP_MUL_RELIN``/``OP_SQUARE_RELIN`` uses the uploaded relin key).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.bfv.params import BfvParameters
from repro.bfv.scheme import Bfv, Ciphertext
from repro.polymath.poly import Polynomial, PolynomialRing

#: Version byte of the circuit *body* encoding (independent of the outer
#: wire envelope version): decoders reject unknown values, so the format
#: can evolve without repurposing byte layouts. See docs/wire-protocol.md.
CIRCUIT_VERSION = 1

OP_ADD = 0x01
OP_SUB = 0x02
OP_ADD_CONST = 0x03
OP_MUL_CONST = 0x04
OP_MAC_CONST = 0x05
OP_MUL_RELIN = 0x06
OP_SQUARE_RELIN = 0x07

#: op -> (human name, argument layout). ``r`` = register index,
#: ``c`` = constant-table index. Arity and argument meaning are fixed
#: per op; decoders reject anything else.
OP_SPECS: dict[int, tuple[str, str]] = {
    OP_ADD: ("add", "rr"),
    OP_SUB: ("sub", "rr"),
    OP_ADD_CONST: ("add_const", "rc"),
    OP_MUL_CONST: ("mul_const", "rc"),
    OP_MAC_CONST: ("mac_const", "rrc"),
    OP_MUL_RELIN: ("mul_relin", "rr"),
    OP_SQUARE_RELIN: ("square_relin", "r"),
}

#: Ops that run the Eq. 4 tensor (and therefore a relinearization).
TENSOR_OPS = frozenset({OP_MUL_RELIN, OP_SQUARE_RELIN})

CONST_SCALAR = 0
CONST_PLAIN = 1

#: Wire scalars are signed 64-bit; plenty for layer weights, and small
#: enough that every implementation agrees on the encoding.
_SCALAR_LIMIT = 2**63


class CircuitError(ValueError):
    """A structurally invalid circuit (bad ops, indices, or names)."""


@dataclass(frozen=True)
class CircuitConst:
    """One entry of a circuit's plaintext constant table.

    ``kind == CONST_SCALAR`` carries a signed integer in ``scalar``;
    ``kind == CONST_PLAIN`` carries the coefficients of an
    already-encoded plaintext polynomial mod ``t`` in ``coeffs``.
    """

    kind: int
    scalar: int = 0
    coeffs: tuple[int, ...] = ()


@dataclass(frozen=True)
class CircuitStep:
    """One SSA step: ``op`` applied to ``args``, writing the next register.

    ``args`` follows the op's layout in :data:`OP_SPECS` — register
    indices for ``r`` positions, constant-table indices for ``c``.
    """

    op: int
    args: tuple[int, ...]


@dataclass(frozen=True)
class Circuit:
    """A validated encrypted program (see the module docstring).

    Instances are immutable and deterministic to serialize, so a
    circuit's wire bytes double as its content address for the server's
    result cache and in-queue dedupe.
    """

    name: str
    inputs: tuple[str, ...]
    consts: tuple[CircuitConst, ...]
    steps: tuple[CircuitStep, ...]
    outputs: tuple[tuple[str, int], ...]  # (name, register)

    def __post_init__(self):
        validate_circuit(self)

    @property
    def num_registers(self) -> int:
        return len(self.inputs) + len(self.steps)

    @property
    def uses_relin(self) -> bool:
        """Whether execution needs the session's relinearization key."""
        return any(step.op in TENSOR_OPS for step in self.steps)

    @property
    def tensor_steps(self) -> tuple[int, ...]:
        """Indices of the steps that run the Eq. 4 tensor."""
        return tuple(
            i for i, step in enumerate(self.steps) if step.op in TENSOR_OPS
        )

    def op_counts(self) -> dict[str, int]:
        """The Section VI-C op mix of one execution (for the cost models)."""
        counts = {"ct_ct_adds": 0, "ct_pt_mults": 0, "ct_ct_mults": 0}
        for step in self.steps:
            if step.op in (OP_ADD, OP_SUB, OP_ADD_CONST):
                counts["ct_ct_adds"] += 1
            elif step.op == OP_MUL_CONST:
                counts["ct_pt_mults"] += 1
            elif step.op == OP_MAC_CONST:
                counts["ct_pt_mults"] += 1
                counts["ct_ct_adds"] += 1
            else:  # tensor ops
                counts["ct_ct_mults"] += 1
        return counts

    def tensor_levels(self) -> dict[int, int]:
        """Dependency depth of every tensor step (step index -> level).

        A tensor step's level is the longest chain of *tensor* steps its
        inputs transitively pass through: level-0 tensors depend only on
        inputs and linear steps, level-1 tensors consume at least one
        level-0 tensor's output, and so on. The chip-pool backend
        dispatches tower work level by level — towers within a level fan
        out across the pool freely, but a level-``k`` tensor is never
        planned before every level-``k-1`` tensor it depends on has
        cleared the gather barrier.
        """
        depth = [0] * self.num_registers  # tensor depth of each register
        levels: dict[int, int] = {}
        base = len(self.inputs)
        for i, step in enumerate(self.steps):
            layout = OP_SPECS[step.op][1]
            reg_args = [a for a, c in zip(step.args, layout) if c == "r"]
            d_in = max((depth[a] for a in reg_args), default=0)
            if step.op in TENSOR_OPS:
                levels[i] = d_in
                depth[base + i] = d_in + 1
            else:
                depth[base + i] = d_in
        return levels


def validate_circuit(circuit: Circuit) -> None:
    """Raise :class:`CircuitError` unless the circuit is well-formed.

    Checks: non-empty unique input/output names, known op codes, correct
    argument counts, every register reference pointing at an
    already-defined register, every constant reference inside the table,
    add-of-scalar rejected (scalars multiply only), and at least one
    step and one output.
    """
    if not circuit.name:
        raise CircuitError("circuit needs a name")
    if not circuit.inputs:
        raise CircuitError("circuit needs at least one ciphertext input")
    if len(set(circuit.inputs)) != len(circuit.inputs):
        raise CircuitError(f"duplicate input names in {circuit.inputs}")
    if any(not name for name in circuit.inputs):
        raise CircuitError("input names must be non-empty")
    if not circuit.steps:
        raise CircuitError("circuit needs at least one step")
    if not circuit.outputs:
        raise CircuitError("circuit needs at least one named output")
    # Wire representability: every table index travels as a u16.
    if circuit.num_registers > 0xFFFF:
        raise CircuitError(
            f"circuit has {circuit.num_registers} registers; the wire "
            "encoding carries at most 65535"
        )
    if len(circuit.consts) > 0xFFFF:
        raise CircuitError(
            f"circuit has {len(circuit.consts)} constants; the wire "
            "encoding carries at most 65535"
        )
    if len(circuit.outputs) > 0xFFFF:
        raise CircuitError(
            f"circuit has {len(circuit.outputs)} outputs; the wire "
            "encoding carries at most 65535"
        )
    for const in circuit.consts:
        if const.kind == CONST_SCALAR:
            if not -_SCALAR_LIMIT <= const.scalar < _SCALAR_LIMIT:
                raise CircuitError(
                    f"scalar constant {const.scalar} exceeds 64 signed bits"
                )
        elif const.kind == CONST_PLAIN:
            if not const.coeffs:
                raise CircuitError("packed plaintext constant is empty")
            if any(c < 0 for c in const.coeffs):
                raise CircuitError("packed plaintext coefficients are mod t")
        else:
            raise CircuitError(f"unknown constant kind {const.kind}")
    defined = len(circuit.inputs)
    for i, step in enumerate(circuit.steps):
        spec = OP_SPECS.get(step.op)
        if spec is None:
            raise CircuitError(f"step {i}: unknown op code 0x{step.op:02x}")
        name, layout = spec
        if len(step.args) != len(layout):
            raise CircuitError(
                f"step {i} ({name}): takes {len(layout)} args, "
                f"got {len(step.args)}"
            )
        for arg, role in zip(step.args, layout):
            if role == "r":
                if not 0 <= arg < defined:
                    raise CircuitError(
                        f"step {i} ({name}): register {arg} is not defined "
                        f"yet ({defined} registers exist)"
                    )
            else:
                if not 0 <= arg < len(circuit.consts):
                    raise CircuitError(
                        f"step {i} ({name}): constant {arg} is outside the "
                        f"table of {len(circuit.consts)}"
                    )
                const = circuit.consts[arg]
                if step.op == OP_ADD_CONST and const.kind != CONST_PLAIN:
                    raise CircuitError(
                        f"step {i}: add_const needs a packed plaintext "
                        "constant (scalars multiply only)"
                    )
        defined += 1
    seen_out: set[str] = set()
    for name, reg in circuit.outputs:
        if not name:
            raise CircuitError("output names must be non-empty")
        if name in seen_out:
            raise CircuitError(f"duplicate output name {name!r}")
        seen_out.add(name)
        if not 0 <= reg < circuit.num_registers:
            raise CircuitError(
                f"output {name!r} references register {reg}, but only "
                f"{circuit.num_registers} exist"
            )


# ----------------------------------------------------------------------
# Builder (what the apps compile themselves with)
# ----------------------------------------------------------------------


class CircuitBuilder:
    """Incremental circuit construction with constant deduplication.

    Register handles are plain ints, so building reads like the
    straight-line program it encodes::

        b = CircuitBuilder("affine")
        x = b.input("x")
        y = b.add_const(b.mul_const(x, b.scalar(3)), b.plain([1, 0, 0, 0]))
        b.output("y", y)
        circuit = b.build()
    """

    def __init__(self, name: str):
        self.name = name
        self._inputs: list[str] = []
        self._consts: list[CircuitConst] = []
        self._const_index: dict[tuple, int] = {}
        self._steps: list[CircuitStep] = []
        self._outputs: list[tuple[str, int]] = []

    # -- declarations ---------------------------------------------------

    def input(self, name: str) -> int:
        """Declare a named ciphertext input; returns its register."""
        if self._steps:
            raise CircuitError("declare every input before the first step")
        self._inputs.append(name)
        return len(self._inputs) - 1

    def scalar(self, value: int) -> int:
        """Intern a scalar constant; returns its table index."""
        key = (CONST_SCALAR, value)
        if key not in self._const_index:
            self._const_index[key] = len(self._consts)
            self._consts.append(CircuitConst(kind=CONST_SCALAR, scalar=value))
        return self._const_index[key]

    def plain(self, coeffs: Sequence[int]) -> int:
        """Intern a packed plaintext constant; returns its table index."""
        key = (CONST_PLAIN, tuple(coeffs))
        if key not in self._const_index:
            self._const_index[key] = len(self._consts)
            self._consts.append(
                CircuitConst(kind=CONST_PLAIN, coeffs=tuple(coeffs))
            )
        return self._const_index[key]

    # -- steps ----------------------------------------------------------

    def _step(self, op: int, *args: int) -> int:
        self._steps.append(CircuitStep(op=op, args=tuple(args)))
        return len(self._inputs) + len(self._steps) - 1

    def add(self, a: int, b: int) -> int:
        return self._step(OP_ADD, a, b)

    def sub(self, a: int, b: int) -> int:
        return self._step(OP_SUB, a, b)

    def add_const(self, a: int, const: int) -> int:
        return self._step(OP_ADD_CONST, a, const)

    def mul_const(self, a: int, const: int) -> int:
        return self._step(OP_MUL_CONST, a, const)

    def mac_const(self, acc: int, a: int, const: int) -> int:
        return self._step(OP_MAC_CONST, acc, a, const)

    def mul_relin(self, a: int, b: int) -> int:
        return self._step(OP_MUL_RELIN, a, b)

    def square_relin(self, a: int) -> int:
        return self._step(OP_SQUARE_RELIN, a)

    def output(self, name: str, reg: int) -> None:
        self._outputs.append((name, reg))

    def build(self) -> Circuit:
        """Freeze into a validated :class:`Circuit`."""
        return Circuit(
            name=self.name,
            inputs=tuple(self._inputs),
            consts=tuple(self._consts),
            steps=tuple(self._steps),
            outputs=tuple(self._outputs),
        )


# ----------------------------------------------------------------------
# Evaluation (shared by every backend; bit-identical by construction)
# ----------------------------------------------------------------------

#: Plaintext-ring cache: constants decode once per (n, t), not per job.
_PLAIN_RINGS: dict[tuple[int, int], PolynomialRing] = {}


def _plain_ring(params: BfvParameters) -> PolynomialRing:
    key = (params.n, params.t)
    if key not in _PLAIN_RINGS:
        _PLAIN_RINGS[key] = PolynomialRing(
            params.n, params.t, allow_non_ntt=True
        )
    return _PLAIN_RINGS[key]


def _decode_const(const: CircuitConst, params: BfvParameters) -> Polynomial | int:
    if const.kind == CONST_SCALAR:
        return const.scalar
    if len(const.coeffs) != params.n:
        raise CircuitError(
            f"packed plaintext constant has {len(const.coeffs)} coefficients "
            f"for n = {params.n}"
        )
    if any(c >= params.t for c in const.coeffs):
        raise CircuitError("plaintext constant coefficient exceeds t")
    return _plain_ring(params)([int(c) for c in const.coeffs])

#: Chip-backend hook: called as ``on_tensor(step_index, a, b)`` with the
#: two 2-component operand ciphertexts just before each tensor step.
TensorHook = Callable[[int, Ciphertext, Ciphertext], None]


def evaluate_circuit(
    engine: Bfv,
    relin_key,
    circuit: Circuit,
    inputs: Sequence[Ciphertext],
    on_tensor: TensorHook | None = None,
) -> dict[str, Ciphertext]:
    """Execute a circuit exactly; returns its named outputs.

    This is the *functional* semantics every backend shares — the same
    :class:`~repro.bfv.scheme.Bfv` calls the apps make in-process, in the
    same order, so a compiled app returns bit-identical ciphertexts to
    its direct execution. The chip-pool backend passes ``on_tensor`` to
    collect each Eq. 4 tensor's operands for tower-sharded chip replay.

    Args:
        engine: the session's evaluation engine.
        relin_key: the session's relinearization key (required only when
            the circuit contains tensor steps).
        circuit: the validated program.
        inputs: ciphertexts bound to ``circuit.inputs``, positionally.
    """
    if len(inputs) != len(circuit.inputs):
        raise CircuitError(
            f"circuit {circuit.name!r} takes {len(circuit.inputs)} inputs "
            f"({', '.join(circuit.inputs)}), got {len(inputs)}"
        )
    params = engine.params
    consts = [_decode_const(c, params) for c in circuit.consts]
    regs: list[Ciphertext] = list(inputs)
    for i, step in enumerate(circuit.steps):
        if step.op == OP_ADD:
            value = engine.add(regs[step.args[0]], regs[step.args[1]])
        elif step.op == OP_SUB:
            value = engine.sub(regs[step.args[0]], regs[step.args[1]])
        elif step.op == OP_ADD_CONST:
            value = engine.add_plain(regs[step.args[0]], consts[step.args[1]])
        elif step.op == OP_MUL_CONST:
            value = _mul_const(engine, regs[step.args[0]], consts[step.args[1]])
        elif step.op == OP_MAC_CONST:
            term = _mul_const(engine, regs[step.args[1]], consts[step.args[2]])
            value = engine.add(regs[step.args[0]], term)
        elif step.op == OP_MUL_RELIN:
            a, b = regs[step.args[0]], regs[step.args[1]]
            if on_tensor is not None:
                on_tensor(i, a, b)
            value = engine.relinearize(engine.multiply(a, b), relin_key)
        elif step.op == OP_SQUARE_RELIN:
            a = regs[step.args[0]]
            if on_tensor is not None:
                on_tensor(i, a, a)
            value = engine.relinearize(engine.square(a), relin_key)
        else:  # pragma: no cover — validate_circuit rejects unknown ops
            raise CircuitError(f"unknown op code 0x{step.op:02x}")
        regs.append(value)
    return {name: regs[reg] for name, reg in circuit.outputs}


def _mul_const(engine: Bfv, ct: Ciphertext, const: Polynomial | int) -> Ciphertext:
    if isinstance(const, int):
        return engine.multiply_scalar(ct, const)
    return engine.multiply_plain(ct, const)
