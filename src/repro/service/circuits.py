"""App circuits: multi-step encrypted programs the service can execute.

Until this module, the wire could only carry *single* homomorphic ops —
the paper's Section VI-C applications (logistic regression, CryptoNets)
ran in-process only, because their hundreds of chained operations had no
encoding. A :class:`Circuit` is that encoding's in-memory form: a small
SSA register program over ciphertexts whose description travels to the
server (the tf-encrypted "computation travels, runtime schedules" model)
and is expanded by the backends into the existing per-op / per-tower
work units.

**Register model.** A circuit has named ciphertext inputs, a table of
plaintext constants, a step list, and named outputs. Registers are
append-only: input ``i`` occupies register ``i``, and step ``k`` writes
register ``num_inputs + k`` — so a step can only reference values that
already exist, the step list is its own topological order, and the
dependency edges the chip-pool scheduler needs fall out of the indices.

**Step ops** (the Section VI-C building blocks):

======================  =====================================================
``OP_ADD``              ``dst = a + b`` (ct+ct)
``OP_SUB``              ``dst = a - b`` (ct+ct)
``OP_ADD_CONST``        ``dst = a + const`` (packed plaintext)
``OP_MUL_CONST``        ``dst = a * const`` (packed plaintext or scalar)
``OP_MAC_CONST``        ``dst = acc + a * const`` (the ct*pt multiply-
                        accumulate every dense/conv layer is made of)
``OP_MUL_RELIN``        ``dst = relinearize(a * b)`` (Eq. 4 tensor + relin)
``OP_SQUARE_RELIN``     ``dst = relinearize(a^2)`` (the CryptoNets
                        activation)
``OP_ROTATE_ROWS``      ``dst = rotate_rows(a, steps)`` (Galois automorphism
                        ``x -> x^(3^steps)``; signed step immediate)
``OP_ROTATE_COLUMNS``   ``dst = rotate_columns(a)`` (row swap, ``x ->
                        x^(2n-1)``)
``OP_MUL``              ``dst = a * b`` (Eq. 4 tensor only — the result
                        stays degree 3 until an ``OP_RELINEARIZE``)
``OP_SQUARE``           ``dst = a^2`` (tensor only, degree-3 result)
``OP_RELINEARIZE``      ``dst = relinearize(a)`` (the deferred key-switch;
                        consecutive runs batch through
                        :meth:`~repro.bfv.scheme.Bfv.relinearize_many`)
======================  =====================================================

The split tensor ops (``OP_MUL``/``OP_SQUARE``/``OP_RELINEARIZE``) are
what the server-side optimizer (:mod:`repro.service.optimizer`) lowers
``OP_MUL_RELIN`` into when lazy relinearization is enabled: linear
combinations of degree-2 products run on the degree-3 tensors directly
and a single deferred relinearization closes the tree. Degree bookkeeping
is static (sizes are fully determined by the step list), so
:func:`validate_circuit` proves at admission time that every tensor or
rotation operand and every output is degree 2 where the scheme requires
it.

Constants come in two kinds: ``CONST_SCALAR`` (a signed integer applied
with :meth:`~repro.bfv.scheme.Bfv.multiply_scalar` — layer weights) and
``CONST_PLAIN`` (an already-encoded plaintext polynomial mod ``t`` —
SIMD-packed biases). Scalars multiply only; packed plaintexts add or
multiply.

The wire encoding lives in :mod:`repro.service.serialization`
(``serialize_circuit`` / ``deserialize_circuit``, tag ``0x07``) and is
specified byte-for-byte in ``docs/wire-protocol.md``. Circuits that use
only the original seven ops still encode (and content-address) as
version 1; any of the five new ops switches the body to version 2 —
see :func:`wire_version`. Secret keys still never appear: a circuit
references the session's *evaluation* keys only (relinearization keys
for the tensor ops, Galois keys for the rotation steps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.bfv.params import BfvParameters
from repro.bfv.rotation import GaloisKey, apply_galois_with_key
from repro.bfv.scheme import Bfv, Ciphertext
from repro.polymath.poly import Polynomial, PolynomialRing

#: Version byte of the circuit *body* encoding (independent of the outer
#: wire envelope version): decoders reject unknown values, so the format
#: can evolve without repurposing byte layouts. Version 2 added the
#: rotation and split tensor ops; encoders emit the lowest version that
#: can carry a circuit (see :func:`wire_version`), so pre-rotation
#: circuits keep their version-1 bytes and content addresses.
CIRCUIT_VERSION = 2

OP_ADD = 0x01
OP_SUB = 0x02
OP_ADD_CONST = 0x03
OP_MUL_CONST = 0x04
OP_MAC_CONST = 0x05
OP_MUL_RELIN = 0x06
OP_SQUARE_RELIN = 0x07
OP_ROTATE_ROWS = 0x08
OP_ROTATE_COLUMNS = 0x09
OP_MUL = 0x0A
OP_SQUARE = 0x0B
OP_RELINEARIZE = 0x0C

#: op -> (human name, argument layout). ``r`` = register index,
#: ``c`` = constant-table index, ``s`` = signed 16-bit immediate
#: (rotation step count; two's complement on the wire). Arity and
#: argument meaning are fixed per op; decoders reject anything else.
OP_SPECS: dict[int, tuple[str, str]] = {
    OP_ADD: ("add", "rr"),
    OP_SUB: ("sub", "rr"),
    OP_ADD_CONST: ("add_const", "rc"),
    OP_MUL_CONST: ("mul_const", "rc"),
    OP_MAC_CONST: ("mac_const", "rrc"),
    OP_MUL_RELIN: ("mul_relin", "rr"),
    OP_SQUARE_RELIN: ("square_relin", "r"),
    OP_ROTATE_ROWS: ("rotate_rows", "rs"),
    OP_ROTATE_COLUMNS: ("rotate_columns", "r"),
    OP_MUL: ("mul", "rr"),
    OP_SQUARE: ("square", "r"),
    OP_RELINEARIZE: ("relinearize", "r"),
}

#: Ops a version-1 body may carry; anything else forces version 2.
V1_OPS = frozenset({
    OP_ADD, OP_SUB, OP_ADD_CONST, OP_MUL_CONST, OP_MAC_CONST,
    OP_MUL_RELIN, OP_SQUARE_RELIN,
})

#: Ops that run the Eq. 4 tensor (and expand into tower work units).
TENSOR_OPS = frozenset({OP_MUL_RELIN, OP_SQUARE_RELIN, OP_MUL, OP_SQUARE})

#: Ops that run a relinearization key switch (need the session relin key).
RELIN_OPS = frozenset({OP_MUL_RELIN, OP_SQUARE_RELIN, OP_RELINEARIZE})

#: Ops that apply a Galois automorphism (need session Galois keys).
ROTATION_OPS = frozenset({OP_ROTATE_ROWS, OP_ROTATE_COLUMNS})

CONST_SCALAR = 0
CONST_PLAIN = 1

#: Wire scalars are signed 64-bit; plenty for layer weights, and small
#: enough that every implementation agrees on the encoding.
_SCALAR_LIMIT = 2**63

#: Rotation step immediates are signed 16-bit (two's complement u16 on
#: the wire) — any slot amount for every supported ring dimension.
_STEP_LIMIT = 2**15


class CircuitError(ValueError):
    """A structurally invalid circuit (bad ops, indices, or names)."""


@dataclass(frozen=True)
class CircuitConst:
    """One entry of a circuit's plaintext constant table.

    ``kind == CONST_SCALAR`` carries a signed integer in ``scalar``;
    ``kind == CONST_PLAIN`` carries the coefficients of an
    already-encoded plaintext polynomial mod ``t`` in ``coeffs``.
    """

    kind: int
    scalar: int = 0
    coeffs: tuple[int, ...] = ()


@dataclass(frozen=True)
class CircuitStep:
    """One SSA step: ``op`` applied to ``args``, writing the next register.

    ``args`` follows the op's layout in :data:`OP_SPECS` — register
    indices for ``r`` positions, constant-table indices for ``c``, and
    signed immediates for ``s``.
    """

    op: int
    args: tuple[int, ...]


@dataclass(frozen=True)
class Circuit:
    """A validated encrypted program (see the module docstring).

    Instances are immutable and deterministic to serialize, so a
    circuit's wire bytes double as its content address for the server's
    result cache and in-queue dedupe.
    """

    name: str
    inputs: tuple[str, ...]
    consts: tuple[CircuitConst, ...]
    steps: tuple[CircuitStep, ...]
    outputs: tuple[tuple[str, int], ...]  # (name, register)

    def __post_init__(self):
        validate_circuit(self)

    @property
    def num_registers(self) -> int:
        return len(self.inputs) + len(self.steps)

    @property
    def uses_relin(self) -> bool:
        """Whether execution needs the session's relinearization key."""
        return any(step.op in RELIN_OPS for step in self.steps)

    @property
    def uses_rotations(self) -> bool:
        """Whether execution needs session Galois keys."""
        return any(step.op in ROTATION_OPS for step in self.steps)

    @property
    def tensor_steps(self) -> tuple[int, ...]:
        """Indices of the steps that run the Eq. 4 tensor."""
        return tuple(
            i for i, step in enumerate(self.steps) if step.op in TENSOR_OPS
        )

    def op_counts(self) -> dict[str, int]:
        """The Section VI-C op mix of one execution (for the cost models).

        ``ct_ct_mults`` counts Eq. 4 tensor executions; ``relins`` and
        ``rotations`` count the key-switch tails separately, because the
        optimizer's lazy relinearization decouples them from the tensors.
        """
        counts = {
            "ct_ct_adds": 0, "ct_pt_mults": 0, "ct_ct_mults": 0,
            "relins": 0, "rotations": 0,
        }
        for step in self.steps:
            if step.op in (OP_ADD, OP_SUB, OP_ADD_CONST):
                counts["ct_ct_adds"] += 1
            elif step.op == OP_MUL_CONST:
                counts["ct_pt_mults"] += 1
            elif step.op == OP_MAC_CONST:
                counts["ct_pt_mults"] += 1
                counts["ct_ct_adds"] += 1
            elif step.op in ROTATION_OPS:
                counts["rotations"] += 1
            elif step.op == OP_RELINEARIZE:
                counts["relins"] += 1
            else:  # tensor ops
                counts["ct_ct_mults"] += 1
                if step.op in RELIN_OPS:
                    counts["relins"] += 1
        return counts

    def tensor_levels(self) -> dict[int, int]:
        """Dependency depth of every tensor step (step index -> level).

        A tensor step's level is the longest chain of *tensor* steps its
        inputs transitively pass through: level-0 tensors depend only on
        inputs and linear steps, level-1 tensors consume at least one
        level-0 tensor's output, and so on. Rotations and deferred
        relinearizations pass depth through unchanged — they key-switch
        but never tensor.

        Both :func:`evaluate_circuit` ordering and the chip-pool
        expansion consume this one memoized computation (it used to be
        recomputed independently in each path), so the level a tensor is
        planned at is the level its operands were produced at, by
        construction.
        """
        cached = getattr(self, "_tensor_levels", None)
        if cached is None:
            depth = [0] * self.num_registers  # tensor depth of each register
            levels: dict[int, int] = {}
            base = len(self.inputs)
            for i, step in enumerate(self.steps):
                layout = OP_SPECS[step.op][1]
                reg_args = [a for a, c in zip(step.args, layout) if c == "r"]
                d_in = max((depth[a] for a in reg_args), default=0)
                if step.op in TENSOR_OPS:
                    levels[i] = d_in
                    depth[base + i] = d_in + 1
                else:
                    depth[base + i] = d_in
            cached = levels
            object.__setattr__(self, "_tensor_levels", cached)
        return dict(cached)


def register_degrees(circuit: Circuit) -> list[int]:
    """Static ciphertext size (component count) of every register.

    Inputs are fresh encryptions (size 2); tensor steps produce size 3;
    relinearization returns to size 2; linear ops take the componentwise
    maximum of their operands (``Bfv.add``/``sub`` pad); plaintext ops
    and rotations preserve size. Sizes are fully determined by the step
    list, so the scheme's operand requirements are checkable statically.
    """
    degrees = [2] * len(circuit.inputs)
    for step in circuit.steps:
        if step.op in (OP_MUL, OP_SQUARE):
            degrees.append(3)
        elif step.op in RELIN_OPS:  # fused or deferred key switch
            degrees.append(2)
        elif step.op in (OP_ADD, OP_SUB):
            degrees.append(max(degrees[step.args[0]], degrees[step.args[1]]))
        elif step.op == OP_MAC_CONST:
            degrees.append(degrees[step.args[0]])
        else:  # add_const / mul_const / rotations preserve size
            degrees.append(degrees[step.args[0]])
    return degrees


def rotation_exponent(params: BfvParameters, op: int, steps: int = 0) -> int:
    """The Galois element a rotation step key-switches under.

    Row rotation by ``k`` slots applies ``x -> x^(3^k mod 2n)`` (negative
    ``k`` wraps mod ``n/2``); the column swap applies ``x -> x^(2n-1)``.
    Raises :class:`CircuitError` for a row rotation that is a no-op at
    this ring dimension (``steps % (n/2) == 0``) — a no-op needs no key
    and should not be in the program.
    """
    if op == OP_ROTATE_COLUMNS:
        return 2 * params.n - 1
    half = params.n // 2
    amount = steps % half
    if amount == 0:
        raise CircuitError(
            f"rotate_rows by {steps} is a no-op at n = {params.n} "
            f"(step count must be nonzero mod {half})"
        )
    return pow(3, amount, 2 * params.n)


def rotation_exponents(circuit: Circuit, params: BfvParameters) -> tuple[int, ...]:
    """Sorted distinct Galois exponents the circuit's rotations need."""
    exps: set[int] = set()
    for step in circuit.steps:
        if step.op == OP_ROTATE_ROWS:
            exps.add(rotation_exponent(params, step.op, step.args[1]))
        elif step.op == OP_ROTATE_COLUMNS:
            exps.add(rotation_exponent(params, step.op))
    return tuple(sorted(exps))


def wire_version(circuit: Circuit) -> int:
    """The lowest circuit-body version that can encode this circuit.

    Emitting the lowest sufficient version keeps pre-rotation circuits'
    wire bytes — and therefore their content addresses, cache keys, and
    dedupe identities — stable across the version-2 format bump.
    """
    if all(step.op in V1_OPS for step in circuit.steps):
        return 1
    return CIRCUIT_VERSION


def validate_circuit(circuit: Circuit) -> None:
    """Raise :class:`CircuitError` unless the circuit is well-formed.

    Checks: non-empty unique input/output names, known op codes, correct
    argument counts, every register reference pointing at an
    already-defined register, every constant reference inside the table,
    add-of-scalar rejected (scalars multiply only), rotation step
    immediates signed-16-bit and nonzero, static ciphertext degrees
    (tensor and rotation operands and outputs must be size 2 — a lazy
    circuit must relinearize before those), and at least one step and
    one output.
    """
    if not circuit.name:
        raise CircuitError("circuit needs a name")
    if not circuit.inputs:
        raise CircuitError("circuit needs at least one ciphertext input")
    if len(set(circuit.inputs)) != len(circuit.inputs):
        raise CircuitError(f"duplicate input names in {circuit.inputs}")
    if any(not name for name in circuit.inputs):
        raise CircuitError("input names must be non-empty")
    if not circuit.steps:
        raise CircuitError("circuit needs at least one step")
    if not circuit.outputs:
        raise CircuitError("circuit needs at least one named output")
    # Wire representability: every table index travels as a u16.
    if circuit.num_registers > 0xFFFF:
        raise CircuitError(
            f"circuit has {circuit.num_registers} registers; the wire "
            "encoding carries at most 65535"
        )
    if len(circuit.consts) > 0xFFFF:
        raise CircuitError(
            f"circuit has {len(circuit.consts)} constants; the wire "
            "encoding carries at most 65535"
        )
    if len(circuit.outputs) > 0xFFFF:
        raise CircuitError(
            f"circuit has {len(circuit.outputs)} outputs; the wire "
            "encoding carries at most 65535"
        )
    for const in circuit.consts:
        if const.kind == CONST_SCALAR:
            if not -_SCALAR_LIMIT <= const.scalar < _SCALAR_LIMIT:
                raise CircuitError(
                    f"scalar constant {const.scalar} exceeds 64 signed bits"
                )
        elif const.kind == CONST_PLAIN:
            if not const.coeffs:
                raise CircuitError("packed plaintext constant is empty")
            if any(c < 0 for c in const.coeffs):
                raise CircuitError("packed plaintext coefficients are mod t")
        else:
            raise CircuitError(f"unknown constant kind {const.kind}")
    defined = len(circuit.inputs)
    degrees = [2] * defined
    for i, step in enumerate(circuit.steps):
        spec = OP_SPECS.get(step.op)
        if spec is None:
            raise CircuitError(f"step {i}: unknown op code 0x{step.op:02x}")
        name, layout = spec
        if len(step.args) != len(layout):
            raise CircuitError(
                f"step {i} ({name}): takes {len(layout)} args, "
                f"got {len(step.args)}"
            )
        reg_degrees = []
        for arg, role in zip(step.args, layout):
            if role == "r":
                if not 0 <= arg < defined:
                    raise CircuitError(
                        f"step {i} ({name}): register {arg} is not defined "
                        f"yet ({defined} registers exist)"
                    )
                reg_degrees.append(degrees[arg])
            elif role == "s":
                if not -_STEP_LIMIT <= arg < _STEP_LIMIT:
                    raise CircuitError(
                        f"step {i} ({name}): step count {arg} exceeds 16 "
                        "signed bits"
                    )
                if arg == 0:
                    raise CircuitError(
                        f"step {i} ({name}): rotation by 0 steps is a no-op"
                    )
            else:
                if not 0 <= arg < len(circuit.consts):
                    raise CircuitError(
                        f"step {i} ({name}): constant {arg} is outside the "
                        f"table of {len(circuit.consts)}"
                    )
                const = circuit.consts[arg]
                if step.op == OP_ADD_CONST and const.kind != CONST_PLAIN:
                    raise CircuitError(
                        f"step {i}: add_const needs a packed plaintext "
                        "constant (scalars multiply only)"
                    )
        # Static degree discipline: the scheme's multiply/square and the
        # Galois automorphism key switch only accept 2-component inputs.
        if step.op in TENSOR_OPS and any(d != 2 for d in reg_degrees):
            raise CircuitError(
                f"step {i} ({name}): tensor operands must be degree-2 "
                "ciphertexts (relinearize deferred products first)"
            )
        if step.op in ROTATION_OPS and reg_degrees[0] != 2:
            raise CircuitError(
                f"step {i} ({name}): rotation operands must be degree-2 "
                "ciphertexts (relinearize deferred products first)"
            )
        if step.op in (OP_MUL, OP_SQUARE):
            degrees.append(3)
        elif step.op in RELIN_OPS:  # fused or deferred key switch
            degrees.append(2)
        else:
            degrees.append(max(reg_degrees))
        defined += 1
    seen_out: set[str] = set()
    for name, reg in circuit.outputs:
        if not name:
            raise CircuitError("output names must be non-empty")
        if name in seen_out:
            raise CircuitError(f"duplicate output name {name!r}")
        seen_out.add(name)
        if not 0 <= reg < circuit.num_registers:
            raise CircuitError(
                f"output {name!r} references register {reg}, but only "
                f"{circuit.num_registers} exist"
            )
        if degrees[reg] != 2:
            raise CircuitError(
                f"output {name!r} is a degree-{degrees[reg]} ciphertext; "
                "relinearize deferred products before the output"
            )


# ----------------------------------------------------------------------
# Builder (what the apps compile themselves with)
# ----------------------------------------------------------------------


class CircuitBuilder:
    """Incremental circuit construction with constant deduplication.

    Register handles are plain ints, so building reads like the
    straight-line program it encodes::

        b = CircuitBuilder("affine")
        x = b.input("x")
        y = b.add_const(b.mul_const(x, b.scalar(3)), b.plain([1, 0, 0, 0]))
        b.output("y", y)
        circuit = b.build()
    """

    def __init__(self, name: str):
        self.name = name
        self._inputs: list[str] = []
        self._consts: list[CircuitConst] = []
        self._const_index: dict[tuple, int] = {}
        self._steps: list[CircuitStep] = []
        self._outputs: list[tuple[str, int]] = []

    # -- declarations ---------------------------------------------------

    def input(self, name: str) -> int:
        """Declare a named ciphertext input; returns its register."""
        if self._steps:
            raise CircuitError("declare every input before the first step")
        self._inputs.append(name)
        return len(self._inputs) - 1

    def scalar(self, value: int) -> int:
        """Intern a scalar constant; returns its table index."""
        key = (CONST_SCALAR, value)
        if key not in self._const_index:
            self._const_index[key] = len(self._consts)
            self._consts.append(CircuitConst(kind=CONST_SCALAR, scalar=value))
        return self._const_index[key]

    def plain(self, coeffs: Sequence[int]) -> int:
        """Intern a packed plaintext constant; returns its table index."""
        key = (CONST_PLAIN, tuple(coeffs))
        if key not in self._const_index:
            self._const_index[key] = len(self._consts)
            self._consts.append(
                CircuitConst(kind=CONST_PLAIN, coeffs=tuple(coeffs))
            )
        return self._const_index[key]

    # -- steps ----------------------------------------------------------

    def _step(self, op: int, *args: int) -> int:
        self._steps.append(CircuitStep(op=op, args=tuple(args)))
        return len(self._inputs) + len(self._steps) - 1

    def add(self, a: int, b: int) -> int:
        return self._step(OP_ADD, a, b)

    def sub(self, a: int, b: int) -> int:
        return self._step(OP_SUB, a, b)

    def add_const(self, a: int, const: int) -> int:
        return self._step(OP_ADD_CONST, a, const)

    def mul_const(self, a: int, const: int) -> int:
        return self._step(OP_MUL_CONST, a, const)

    def mac_const(self, acc: int, a: int, const: int) -> int:
        return self._step(OP_MAC_CONST, acc, a, const)

    def mul_relin(self, a: int, b: int) -> int:
        return self._step(OP_MUL_RELIN, a, b)

    def square_relin(self, a: int) -> int:
        return self._step(OP_SQUARE_RELIN, a)

    def rotate_rows(self, a: int, steps: int) -> int:
        """Rotate the packed rows by ``steps`` slots (signed; nonzero)."""
        return self._step(OP_ROTATE_ROWS, a, steps)

    def rotate_columns(self, a: int) -> int:
        """Swap the two packed rows."""
        return self._step(OP_ROTATE_COLUMNS, a)

    def mul(self, a: int, b: int) -> int:
        """Eq. 4 tensor without relinearization (degree-3 result)."""
        return self._step(OP_MUL, a, b)

    def square(self, a: int) -> int:
        """Tensor square without relinearization (degree-3 result)."""
        return self._step(OP_SQUARE, a)

    def relinearize(self, a: int) -> int:
        """Deferred key switch: degree 3 back to degree 2."""
        return self._step(OP_RELINEARIZE, a)

    def output(self, name: str, reg: int) -> None:
        self._outputs.append((name, reg))

    def build(self) -> Circuit:
        """Freeze into a validated :class:`Circuit`."""
        return Circuit(
            name=self.name,
            inputs=tuple(self._inputs),
            consts=tuple(self._consts),
            steps=tuple(self._steps),
            outputs=tuple(self._outputs),
        )


# ----------------------------------------------------------------------
# Evaluation (shared by every backend; bit-identical by construction)
# ----------------------------------------------------------------------

#: Plaintext-ring cache: constants decode once per (n, t), not per job.
_PLAIN_RINGS: dict[tuple[int, int], PolynomialRing] = {}


def _plain_ring(params: BfvParameters) -> PolynomialRing:
    key = (params.n, params.t)
    if key not in _PLAIN_RINGS:
        _PLAIN_RINGS[key] = PolynomialRing(
            params.n, params.t, allow_non_ntt=True
        )
    return _PLAIN_RINGS[key]


def _decode_const(const: CircuitConst, params: BfvParameters) -> Polynomial | int:
    if const.kind == CONST_SCALAR:
        return const.scalar
    if len(const.coeffs) != params.n:
        raise CircuitError(
            f"packed plaintext constant has {len(const.coeffs)} coefficients "
            f"for n = {params.n}"
        )
    if any(c >= params.t for c in const.coeffs):
        raise CircuitError("plaintext constant coefficient exceeds t")
    return _plain_ring(params)([int(c) for c in const.coeffs])

#: Chip-backend hook: called as ``on_tensor(step_index, a, b)`` with the
#: two 2-component operand ciphertexts just before each tensor step.
TensorHook = Callable[[int, Ciphertext, Ciphertext], None]

#: Galois-key resolver: maps a rotation step's Galois exponent to the
#: session's uploaded key (``Session.require_galois`` has this shape).
GaloisResolver = Callable[[int], GaloisKey]


def _relin_runs(circuit: Circuit) -> dict[int, tuple[int, ...]]:
    """Maximal batchable runs of consecutive ``OP_RELINEARIZE`` steps.

    Maps a run's first step index to every step index in the run. A run
    breaks if a member consumes a register produced *inside* the run
    (relin-of-relin chains must stay sequential). Runs fold through one
    :meth:`~repro.bfv.scheme.Bfv.relinearize_many` call — bit-identical
    to per-step relinearization, but one shared digit-decomposition pass.
    """
    runs: dict[int, tuple[int, ...]] = {}
    base = len(circuit.inputs)
    i = 0
    while i < len(circuit.steps):
        if circuit.steps[i].op != OP_RELINEARIZE:
            i += 1
            continue
        start = i
        members = [i]
        i += 1
        while (
            i < len(circuit.steps)
            and circuit.steps[i].op == OP_RELINEARIZE
            and circuit.steps[i].args[0] < base + start
        ):
            members.append(i)
            i += 1
        if len(members) > 1:
            runs[start] = tuple(members)
    return runs


def evaluate_circuit(
    engine: Bfv,
    relin_key,
    circuit: Circuit,
    inputs: Sequence[Ciphertext],
    on_tensor: TensorHook | None = None,
    galois: GaloisResolver | None = None,
) -> dict[str, Ciphertext]:
    """Execute a circuit exactly; returns its named outputs.

    This is the *functional* semantics every backend shares — the same
    :class:`~repro.bfv.scheme.Bfv` calls the apps make in-process, in the
    same order, so a compiled app returns bit-identical ciphertexts to
    its direct execution. The chip-pool backend passes ``on_tensor`` to
    collect each Eq. 4 tensor's operands for tower-sharded chip replay.

    Args:
        engine: the session's evaluation engine.
        relin_key: the session's relinearization key (required only when
            the circuit contains relinearizing steps).
        circuit: the validated program.
        inputs: ciphertexts bound to ``circuit.inputs``, positionally.
        on_tensor: optional per-tensor operand hook (chip replay).
        galois: resolver from Galois exponent to the session's uploaded
            :class:`~repro.bfv.rotation.GaloisKey` (required only when
            the circuit contains rotation steps).
    """
    if len(inputs) != len(circuit.inputs):
        raise CircuitError(
            f"circuit {circuit.name!r} takes {len(circuit.inputs)} inputs "
            f"({', '.join(circuit.inputs)}), got {len(inputs)}"
        )
    params = engine.params
    consts = [_decode_const(c, params) for c in circuit.consts]
    relin_runs = _relin_runs(circuit)
    batched: dict[int, Ciphertext] = {}
    regs: list[Ciphertext] = list(inputs)
    for i, step in enumerate(circuit.steps):
        if i in batched:
            regs.append(batched.pop(i))
            continue
        if step.op == OP_ADD:
            value = engine.add(regs[step.args[0]], regs[step.args[1]])
        elif step.op == OP_SUB:
            value = engine.sub(regs[step.args[0]], regs[step.args[1]])
        elif step.op == OP_ADD_CONST:
            value = engine.add_plain(regs[step.args[0]], consts[step.args[1]])
        elif step.op == OP_MUL_CONST:
            value = _mul_const(engine, regs[step.args[0]], consts[step.args[1]])
        elif step.op == OP_MAC_CONST:
            term = _mul_const(engine, regs[step.args[1]], consts[step.args[2]])
            value = engine.add(regs[step.args[0]], term)
        elif step.op == OP_MUL_RELIN:
            a, b = regs[step.args[0]], regs[step.args[1]]
            if on_tensor is not None:
                on_tensor(i, a, b)
            value = engine.relinearize(engine.multiply(a, b), relin_key)
        elif step.op == OP_SQUARE_RELIN:
            a = regs[step.args[0]]
            if on_tensor is not None:
                on_tensor(i, a, a)
            value = engine.relinearize(engine.square(a), relin_key)
        elif step.op == OP_MUL:
            a, b = regs[step.args[0]], regs[step.args[1]]
            if on_tensor is not None:
                on_tensor(i, a, b)
            value = engine.multiply(a, b)
        elif step.op == OP_SQUARE:
            a = regs[step.args[0]]
            if on_tensor is not None:
                on_tensor(i, a, a)
            value = engine.square(a)
        elif step.op == OP_RELINEARIZE:
            run = relin_runs.get(i)
            if run is not None and not (
                relin_key is not None
                and engine.can_batch_relinearize(relin_key)
            ):
                run = None  # scalar key-switch path: fold one at a time
            if run is not None:
                folded = engine.relinearize_many(
                    [regs[circuit.steps[j].args[0]] for j in run], relin_key
                )
                for j, ct in zip(run, folded):
                    batched[j] = ct
                value = batched.pop(i)
            else:
                value = engine.relinearize(regs[step.args[0]], relin_key)
        elif step.op in ROTATION_OPS:
            a = regs[step.args[0]]
            steps_imm = step.args[1] if step.op == OP_ROTATE_ROWS else 0
            exponent = rotation_exponent(params, step.op, steps_imm)
            if galois is None:
                raise CircuitError(
                    f"circuit {circuit.name!r} contains rotation steps but "
                    "no Galois key resolver was provided"
                )
            value = apply_galois_with_key(engine, a, galois(exponent))
        else:  # pragma: no cover — validate_circuit rejects unknown ops
            raise CircuitError(f"unknown op code 0x{step.op:02x}")
        regs.append(value)
    return {name: regs[reg] for name, reg in circuit.outputs}


def _mul_const(engine: Bfv, ct: Ciphertext, const: Polynomial | int) -> Ciphertext:
    if isinstance(const, int):
        return engine.multiply_scalar(ct, const)
    return engine.multiply_plain(ct, const)
