"""The service front door: a synchronous in-process ``submit/poll/result`` API.

:class:`FheServer` is what a transport (HTTP, gRPC, a message queue — see
the ROADMAP open items) would wrap. Everything crossing this boundary is
wire bytes: parameter sets, evaluation keys, ciphertext operands, and
ciphertext results all travel in the :mod:`repro.service.serialization`
format, so the server genuinely works across a process boundary even
though this build runs it in-process.

The execution model is cooperative: ``poll`` advances the scheduler by at
most one batch per call (an event-loop tick), and ``result`` drives it to
completion for the requested job. ``run`` drains everything.
"""

from __future__ import annotations

from repro.bfv.params import BfvParameters
from repro.bfv.scheme import Ciphertext
from repro.service.backends import (
    Backend,
    ChipPoolBackend,
    FastNttBackend,
    SoftwareBackend,
    default_app_params,
)
from repro.service.jobs import Job, JobKind, JobStatus
from repro.service.registry import Session, SessionRegistry
from repro.service.scheduler import BatchingScheduler, ServiceStats
from repro.service.serialization import (
    deserialize_galois_key,
    deserialize_params,
    deserialize_public_key,
    deserialize_relin_key,
    serialize_ciphertext,
)


class FheServer:
    """Multi-tenant FHE serving endpoint.

    Args:
        pool_size: chips in the cycle-accurate pool backend.
        max_batch: scheduler batch size.
        default_backend: backend used when a request names none
            (``chip_pool``, ``software``, or ``fastntt``).
        strict_fidelity: fail EvalMult jobs whose tensor cannot execute
            on-chip instead of silently pricing them from the model.
        pool_engine: host-side functional engine for the chip pool
            (``"exact"`` or ``"fast"``; results are bit-identical).
    """

    def __init__(self, pool_size: int = 4, max_batch: int = 8,
                 default_backend: str = "chip_pool",
                 strict_fidelity: bool = False, pool_engine: str = "exact"):
        self.registry = SessionRegistry()
        self.chip_pool = ChipPoolBackend(
            pool_size=pool_size, strict_fidelity=strict_fidelity,
            engine=pool_engine,
        )
        self.backends: dict[str, Backend] = {
            "chip_pool": self.chip_pool,
            "software": SoftwareBackend(),
            "fastntt": FastNttBackend(),
        }
        self.scheduler = BatchingScheduler(
            self.registry, self.backends, default=default_backend,
            max_batch=max_batch,
        )
        self._jobs: dict[str, Job] = {}

    # ------------------------------------------------------------------
    # Session management (wire-format inputs)
    # ------------------------------------------------------------------

    def open_session(
        self,
        tenant: str,
        params: bytes | BfvParameters,
        *,
        public_key: bytes | None = None,
        relin_key: bytes | None = None,
        galois_keys: tuple[bytes, ...] = (),
    ) -> str:
        """Open a tenant session from serialized parameters and keys."""
        if isinstance(params, (bytes, bytearray)):
            params = deserialize_params(bytes(params))
        public = (
            deserialize_public_key(public_key, params)
            if public_key is not None else None
        )
        relin = (
            deserialize_relin_key(relin_key, params)
            if relin_key is not None else None
        )
        galois = tuple(deserialize_galois_key(g, params) for g in galois_keys)
        session = self.registry.open_session(
            tenant, params, public=public, relin=relin, galois=galois
        )
        return session.session_id

    def open_app_session(self, tenant: str, kind: JobKind) -> str:
        """Open a session on the canonical parameter set of a mini app."""
        session = self.registry.open_session(tenant, default_app_params(kind))
        return session.session_id

    def session(self, session_id: str) -> Session:
        return self.registry.get(session_id)

    # ------------------------------------------------------------------
    # Job intake
    # ------------------------------------------------------------------

    def submit(
        self,
        session_id: str,
        kind: JobKind | str,
        operands: tuple[bytes | Ciphertext, ...] = (),
        *,
        steps: int = 0,
        payload: object = None,
        backend: str = "",
    ) -> str:
        """Queue one job; operands may be wire bytes or Ciphertext objects.

        Returns the job id to ``poll``/``result`` against.
        """
        if isinstance(kind, str):
            kind = JobKind(kind)
        session = self.registry.get(session_id)
        decoded = [
            self.registry.ingest_ciphertext(session, op)
            if isinstance(op, (bytes, bytearray)) else op
            for op in operands
        ]
        job = Job(
            session_id=session_id,
            tenant=session.tenant,
            kind=kind,
            operands=decoded,
            steps=steps,
            payload=payload,
            backend=backend,
        )
        self.scheduler.submit(job)
        self._jobs[job.job_id] = job
        return job.job_id

    # ------------------------------------------------------------------
    # Progress and results
    # ------------------------------------------------------------------

    def _job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def poll(self, job_id: str) -> JobStatus:
        """Report a job's status, advancing the scheduler one batch tick."""
        job = self._job(job_id)
        if not job.done:
            self.scheduler.step()
        return job.status

    def result(self, job_id: str, wire: bool = True) -> object:
        """Block (drive the scheduler) until the job finishes.

        Raw-op results return as wire bytes by default — the server hands
        back exactly what would cross a transport. ``wire=False`` returns
        the in-memory object; app-level results are always objects.

        Raises:
            RuntimeError: if the job failed (message carries the cause).
        """
        job = self._job(job_id)
        while not job.done:
            if self.scheduler.step() is None:
                break
        if job.status is JobStatus.FAILED:
            raise RuntimeError(f"job {job_id} failed: {job.error}")
        if not job.done:
            raise RuntimeError(f"job {job_id} is still {job.status.value}")
        if wire and isinstance(job.result, Ciphertext):
            return serialize_ciphertext(job.result)
        return job.result

    def job_metrics(self, job_id: str):
        return self._job(job_id).metrics

    def run(self) -> ServiceStats:
        """Drain every queued job."""
        return self.scheduler.run_all()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def throughput_rows(self) -> list[dict]:
        """Per-backend throughput summary (jobs/sec over attributed time)."""
        rows = []
        for name, backend in sorted(self.backends.items()):
            if backend.jobs_done == 0:
                continue
            wall = backend.wall_seconds()
            row = {
                "backend": backend.name,
                "jobs": backend.jobs_done,
                "wall_s": wall,
                "jobs_per_s": backend.jobs_done / wall if wall > 0 else float("inf"),
            }
            if isinstance(backend, ChipPoolBackend):
                row["pool"] = len(backend.workers)
                row["wall_cycles"] = backend.wall_cycles
                row["total_cycles"] = backend.total_cycles
            rows.append(row)
        return rows

    def pool_report(self) -> dict:
        """Tower-sharding view of the chip pool: makespan and fidelity.

        Two wall-time views against ``total_cycles`` of work:
        ``wall_cycles`` (max cumulative per-worker busy cycles — the
        utilization view, assuming work from different batches overlaps
        freely) and ``batch_makespan_cycles`` (sum of per-batch makespans
        — the conservative view under the per-batch gather barrier;
        always >= ``wall_cycles``). ``per_worker_cycles`` shows the
        spread, ``tower_cycles`` the per-tower totals over every
        chip-executed batch, and ``fidelity`` counts jobs per execution
        path (``chip`` / ``model`` / ``relin_model``).
        """
        pool = self.chip_pool
        tower_totals: dict[int, int] = {}
        for report in self.scheduler.stats.batches:
            for t, c in enumerate(report.tower_cycles):
                tower_totals[t] = tower_totals.get(t, 0) + c
        return {
            "pool": len(pool.workers),
            "wall_cycles": pool.wall_cycles,
            "batch_makespan_cycles": self.scheduler.stats.makespan_cycles,
            "total_cycles": pool.total_cycles,
            "per_worker_cycles": [w.busy_cycles for w in pool.workers],
            "tower_cycles": [
                tower_totals[t] for t in sorted(tower_totals)
            ],
            "fidelity": self.scheduler.stats.fidelity,
        }
