"""The service front door: a synchronous in-process ``submit/poll/result`` API.

:class:`FheServer` is what a transport wraps — in this repo, the asyncio
TCP listener in :mod:`repro.service.transport` runs one of these on a
dedicated worker thread. Everything crossing this boundary is wire
bytes: parameter sets, evaluation keys, ciphertext operands, circuit
descriptions, and results all travel in the
:mod:`repro.service.serialization` format, so the server genuinely works
across a process boundary even when a test drives it in-process.

The execution model is cooperative: ``poll`` advances the scheduler by at
most one batch per call (an event-loop tick), and ``result`` drives it to
completion for the requested job. ``run`` drains everything; the
transport's pump task drives ``tick`` instead.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.bfv.params import BfvParameters
from repro.bfv.scheme import Ciphertext
from repro.service.backends import (
    Backend,
    BackendError,
    ChipPoolBackend,
    FastNttBackend,
    SoftwareBackend,
    _galois_exponent,
    default_app_params,
)
from repro.service.circuits import Circuit, CircuitError, rotation_exponents
from repro.service.errors import QuotaExceededError
from repro.service.optimizer import DEFAULT_LEVEL, LEVELS, optimize_circuit
from repro.service.fleet import FleetBackend
from repro.service.jobs import Job, JobKind, JobStatus
from repro.service.registry import Session, SessionRegistry
from repro.service.scheduler import BatchingScheduler, ServiceStats
from repro.service.serialization import (
    deserialize_circuit,
    deserialize_galois_key,
    deserialize_params,
    deserialize_public_key,
    deserialize_relin_key,
    serialize_ciphertext,
    serialize_circuit,
    serialize_circuit_outputs,
    serialize_galois_key,
    serialize_relin_key,
)
from repro.service.telemetry import (
    MetricsRegistry,
    adopt_batch_spans,
    aggregate_phases,
    new_trace,
)


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits (``0`` disables each mechanism).

    ``max_inflight`` caps accepted-but-unsettled jobs for the tenant;
    ``rate``/``burst`` form a token bucket over submits: a submit costs
    one token, the bucket holds at most ``burst`` and refills at
    ``rate`` tokens per second. A ``burst`` with ``rate == 0`` never
    refills — the deterministic configuration the quota tests use.
    """

    max_inflight: int = 0
    rate: float = 0.0
    burst: int = 0


class FheServer:
    """Multi-tenant FHE serving endpoint.

    Args:
        pool_size: chips in the cycle-accurate pool backend.
        max_batch: scheduler batch size.
        default_backend: backend used when a request names none
            (``chip_pool``, ``software``, or ``fastntt``).
        strict_fidelity: fail EvalMult jobs whose tensor cannot execute
            on-chip instead of silently pricing them from the model.
        pool_engine: host-side functional engine for the chip pool
            (``"exact"`` or ``"fast"``; results are bit-identical).
        result_cache_size: capacity (entries) of the content-addressed
            result cache; ``0`` disables caching. Raw-op and circuit
            results are keyed by (params digest, op, rotation steps,
            circuit digest, backend, evaluation-key digest, operand
            hashes), so a repeated identical request — common in
            inference traffic — completes at submit time without
            recomputation. Homomorphic evaluation is deterministic and
            all backends are bit-identical, so a cached result is
            exactly what a fresh execution would return.
        fleet_size: worker count for the multi-process fleet backend
            (``0``, the default, registers no fleet). With a fleet the
            server **must** be closed (:meth:`close`, or use it as a
            context manager) to reap the worker processes.
        fleet_mode: ``"process"`` (spawned interpreters) or ``"thread"``
            (the identical worker loop in threads, for fast tests).
        fault_spec: deterministic fault-injection spec for the fleet
            (see :class:`~repro.service.fleet.FaultPlan`); defaults to
            the ``REPRO_FAULT`` environment variable.
        fleet_options: extra :class:`~repro.service.fleet.FleetBackend`
            keyword arguments (``chips``, ``heartbeat_interval``,
            ``heartbeat_timeout``, ``worker_window``, ``max_attempts``,
            ``restart``, ``spill_threshold``).
        quotas: per-tenant :class:`TenantQuota` admission limits keyed
            by tenant name (``None``/missing tenant = unlimited). An
            over-quota submit raises the retryable
            :class:`~repro.service.errors.QuotaExceededError` before
            any decode or math.
        optimizer_level: default circuit optimization level applied at
            submit — ``"none"``, ``"exact"`` (byte-exact passes only;
            the default), or ``"lazy"`` (adds deferred relinearization,
            plaintext-equal but not byte-identical to the unoptimized
            program). A per-submit ``optimizer=`` argument overrides it.
    """

    def __init__(self, pool_size: int = 4, max_batch: int = 8,
                 default_backend: str = "chip_pool",
                 strict_fidelity: bool = False, pool_engine: str = "exact",
                 result_cache_size: int = 256, fleet_size: int = 0,
                 fleet_mode: str = "process", fault_spec: str | None = None,
                 fleet_options: dict | None = None,
                 quotas: dict[str, TenantQuota] | None = None,
                 optimizer_level: str = DEFAULT_LEVEL):
        if optimizer_level not in LEVELS:
            raise ValueError(
                f"optimizer_level must be one of {sorted(LEVELS)}, "
                f"got {optimizer_level!r}"
            )
        self.optimizer_level = optimizer_level
        self.registry = SessionRegistry()
        self.chip_pool = ChipPoolBackend(
            pool_size=pool_size, strict_fidelity=strict_fidelity,
            engine=pool_engine,
        )
        self.backends: dict[str, Backend] = {
            "chip_pool": self.chip_pool,
            "software": SoftwareBackend(),
            "fastntt": FastNttBackend(),
        }
        self.fleet: FleetBackend | None = None
        if fleet_size > 0:
            self.fleet = FleetBackend(
                fleet_size, mode=fleet_mode, pool_engine=pool_engine,
                strict_fidelity=strict_fidelity, fault_spec=fault_spec,
                **(fleet_options or {}),
            )
            self.backends["fleet"] = self.fleet
        elif fleet_options:
            raise ValueError("fleet_options given but fleet_size is 0")
        self._closed = False
        self.scheduler = BatchingScheduler(
            self.registry, self.backends, default=default_backend,
            max_batch=max_batch,
        )
        # One metrics registry per server, shared down the stack: the
        # scheduler (queue depth, batch occupancy), every backend
        # (worker busy fractions, tower planning), and the transport
        # (frame/byte counters) all write here, so one STATS reply or
        # ``stats_snapshot()`` covers the whole serving path.
        self.metrics = MetricsRegistry()
        self.scheduler.metrics = self.metrics
        for backend in self.backends.values():
            backend.metrics = self.metrics
        self._submit_hist = self.metrics.histogram(
            "repro_submit_seconds", "submit-path latency per job"
        )
        self._jobs: dict[str, Job] = {}
        if result_cache_size < 0:
            raise ValueError("result_cache_size must be >= 0")
        self._cache_capacity = result_cache_size
        self._result_cache: OrderedDict[tuple, Ciphertext] = OrderedDict()
        self._pending_cache: dict[str, tuple] = {}
        # In-queue dedupe (cache-aware scheduling): content address ->
        # the queued/running "primary" job id, and primary -> followers
        # awaiting its result. Works even with the result cache disabled.
        self._dedupe: dict[tuple, str] = {}
        self._followers: dict[str, list[str]] = {}
        # Evaluation-key digests, memoized by key-object identity (the
        # held reference keeps ids stable while the entry lives);
        # re-uploading a key yields a new object and therefore a new
        # digest. LRU-bounded so session churn cannot grow it forever.
        self._key_digests: OrderedDict[int, tuple[object, bytes]] = OrderedDict()
        self._key_digest_capacity = 128
        # Per-tenant admission control: outstanding job ids (pruned of
        # settled jobs at admission time, so each set stays bounded by
        # its quota) and token-bucket state (tokens, last refill).
        self._quotas = dict(quotas) if quotas else {}
        self._tenant_inflight: dict[str, set[str]] = {}
        self._tenant_buckets: dict[str, tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (fleet worker processes); idempotent."""
        if self._closed:
            return
        self._closed = True
        for backend in self.backends.values():
            backend.close()

    def __enter__(self) -> "FheServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Session management (wire-format inputs)
    # ------------------------------------------------------------------

    def open_session(
        self,
        tenant: str,
        params: bytes | BfvParameters,
        *,
        public_key: bytes | None = None,
        relin_key: bytes | None = None,
        galois_keys: tuple[bytes, ...] = (),
    ) -> str:
        """Open a tenant session from serialized parameters and keys."""
        if isinstance(params, (bytes, bytearray)):
            params = deserialize_params(bytes(params))
        public = (
            deserialize_public_key(public_key, params)
            if public_key is not None else None
        )
        relin = (
            deserialize_relin_key(relin_key, params)
            if relin_key is not None else None
        )
        galois = tuple(deserialize_galois_key(g, params) for g in galois_keys)
        session = self.registry.open_session(
            tenant, params, public=public, relin=relin, galois=galois
        )
        return session.session_id

    def open_app_session(self, tenant: str, kind: JobKind) -> str:
        """Open a session on the canonical parameter set of a mini app."""
        session = self.registry.open_session(tenant, default_app_params(kind))
        return session.session_id

    def session(self, session_id: str) -> Session:
        return self.registry.get(session_id)

    # ------------------------------------------------------------------
    # Job intake
    # ------------------------------------------------------------------

    def submit(
        self,
        session_id: str,
        kind: JobKind | str,
        operands: tuple[bytes | Ciphertext, ...] = (),
        *,
        steps: int = 0,
        payload: object = None,
        backend: str = "",
        deadline: float = 0.0,
        optimizer: str | None = None,
    ) -> str:
        """Queue one job; operands may be wire bytes or Ciphertext objects.

        A circuit job's ``payload`` may be a built
        :class:`~repro.service.circuits.Circuit` or its wire bytes (the
        transport passes the blob straight through); its operands bind
        positionally to the circuit's named inputs.

        A cacheable job (raw op or circuit) whose content address is
        already cached completes immediately (a cache hit never enters
        the scheduler). One whose address matches a job still queued or
        running attaches to that execution as a dedupe follower — the
        cache hit wins when both apply, since a cached result needs no
        waiting at all. Everything else is queued. Returns the job id to
        ``poll``/``result`` against.

        ``deadline`` (seconds from now, ``0`` = none) bounds the job's
        life: expired before dispatch it is shed at batch-plan time,
        expired in flight the fleet reaps it — either way it fails with
        the typed ``deadline expired`` message.

        ``optimizer`` overrides the server's configured circuit
        optimization level for this submit (``"none"``, ``"exact"``, or
        ``"lazy"`` — see :mod:`repro.service.optimizer`); circuits are
        rewritten server-side before queueing, and the per-pass rewrite
        report lands in the job's metrics.

        Raises :class:`~repro.service.errors.QuotaExceededError`
        (retryable) when the tenant is over its admission quota — before
        any operand decode, so a rejected submit leaves no server state.
        """
        tenant = None
        if self._quotas:
            tenant = self.registry.get(session_id).tenant
            self._admit_tenant(tenant)
        trace = new_trace()
        started = time.perf_counter()
        with trace.span("submit"):
            job_id = self._submit_traced(
                trace, session_id, kind, operands,
                steps=steps, payload=payload, backend=backend,
                deadline=deadline, optimizer=optimizer,
            )
        trace.stamp_queued()  # queue_wait origin for the scheduler's mark
        self._submit_hist.observe(time.perf_counter() - started)
        if tenant is not None and not self._jobs[job_id].done:
            quota = self._quotas.get(tenant)
            if quota is not None and quota.max_inflight > 0:
                self._tenant_inflight.setdefault(tenant, set()).add(job_id)
        return job_id

    def _admit_tenant(self, tenant: str) -> None:
        """Admission control: runs before any decode or math."""
        quota = self._quotas.get(tenant)
        if quota is None:
            return
        if quota.max_inflight > 0:
            outstanding = self._tenant_inflight.get(tenant, set())
            live = {jid for jid in outstanding if not self._jobs[jid].done}
            self._tenant_inflight[tenant] = live
            if len(live) >= quota.max_inflight:
                self.metrics.counter(
                    "repro_quota_rejections_total",
                    "submits rejected by per-tenant admission control",
                    tenant=tenant, reason="inflight",
                ).inc()
                raise QuotaExceededError(
                    f"tenant {tenant!r} has {len(live)} job(s) in flight "
                    f"(quota {quota.max_inflight}); retry after completions"
                )
        if quota.burst > 0:
            now = time.monotonic()
            tokens, last = self._tenant_buckets.get(
                tenant, (float(quota.burst), now)
            )
            tokens = min(float(quota.burst), tokens + (now - last) * quota.rate)
            if tokens < 1.0:
                self._tenant_buckets[tenant] = (tokens, now)
                self.metrics.counter(
                    "repro_quota_rejections_total",
                    "submits rejected by per-tenant admission control",
                    tenant=tenant, reason="rate",
                ).inc()
                raise QuotaExceededError(
                    f"tenant {tenant!r} exceeded its submit rate "
                    f"({quota.rate}/s, burst {quota.burst}); retry after "
                    "backoff"
                )
            self._tenant_buckets[tenant] = (tokens - 1.0, now)

    def _submit_traced(
        self, trace, session_id, kind, operands, *, steps, payload, backend,
        deadline=0.0, optimizer=None,
    ) -> str:
        opt_level = optimizer if optimizer is not None else self.optimizer_level
        if opt_level not in LEVELS:
            raise ValueError(
                f"optimizer must be one of {sorted(LEVELS)}, "
                f"got {opt_level!r}"
            )
        rewrite = None
        with trace.span("decode"):
            if isinstance(kind, str):
                kind = JobKind(kind)
            circuit_digest = b""
            if kind is JobKind.CIRCUIT:
                if isinstance(payload, (bytes, bytearray)):
                    # The received frame is the content address — no
                    # re-encode on the serving hot path. (A non-canonical
                    # encoding of the same program would address
                    # separately; that only forgoes sharing, never
                    # aliases it.)
                    raw = bytes(payload)
                    circuit_digest = hashlib.sha256(raw).digest()
                    payload = deserialize_circuit(raw)
                elif isinstance(payload, Circuit):
                    circuit_digest = hashlib.sha256(
                        serialize_circuit(payload)
                    ).digest()
                if isinstance(payload, Circuit):
                    # Server-side optimization: the content address stays
                    # the *submitted* program (so identical submits share
                    # cache entries regardless of what the passes did),
                    # while the queued job carries the rewritten circuit.
                    with trace.span("optimize"):
                        payload, rewrite = optimize_circuit(
                            payload, level=opt_level
                        )
                    for pass_name in (
                        "constant_fold", "cse", "dce", "relin_lazy"
                    ):
                        eliminated = rewrite.get(pass_name, 0)
                        if eliminated:
                            self.metrics.counter(
                                "repro_circuit_steps_eliminated_total",
                                "circuit steps eliminated by optimizer "
                                "passes, by pass",
                                **{"pass": pass_name},
                            ).inc(eliminated)
            session = self.registry.get(session_id)
            decoded = [
                self.registry.ingest_ciphertext(session, op)
                if isinstance(op, (bytes, bytearray)) else op
                for op in operands
            ]
            # When every operand arrived as wire bytes, keep the frames:
            # the fleet forwards them to workers without re-serializing.
            wire_ops = tuple(
                bytes(op) for op in operands
                if isinstance(op, (bytes, bytearray))
            )
            if len(wire_ops) != len(operands):
                wire_ops = ()
        if backend and backend not in self.backends:
            raise ValueError(
                f"unknown backend {backend!r} (have {sorted(self.backends)})"
            )
        job = Job(
            session_id=session_id,
            tenant=session.tenant,
            kind=kind,
            operands=decoded,
            steps=steps,
            payload=payload,
            backend=backend,
            wire_operands=wire_ops,
            trace=trace,
        )
        if deadline > 0:
            job.deadline = time.monotonic() + deadline
        if rewrite is not None:
            job.metrics.rewrite = rewrite
        self.metrics.counter(
            "repro_jobs_submitted_total", "jobs submitted",
            tenant=session.tenant,
        ).inc()
        stats = self.scheduler.stats
        with trace.span("cache_check"):
            key = self._cache_key(
                session, job, operands, circuit_digest, opt_level
            )
            cached = key is not None and key in self._result_cache
            primary_id = self._dedupe.get(key) if key is not None else None
        if cached:
            self._result_cache.move_to_end(key)
            job.finish(self._result_cache[key])
            job.metrics.backend = "cache"
            job.metrics.batch_id = 0
            stats.jobs_submitted += 1
            stats.cache_hits += 1
            stats.settle(job)
            self.metrics.counter(
                "repro_cache_hits_total", "result-cache hits at submit"
            ).inc()
            self._jobs[job.job_id] = job
            return job.job_id
        if primary_id is not None and not self._jobs[primary_id].done:
            # Submit-before-complete miss: attach to the in-flight
            # execution; the result fans out at harvest time.
            job.metrics.backend = "dedupe"
            job.metrics.dedupe_of = primary_id
            self._jobs[job.job_id] = job
            self._followers.setdefault(primary_id, []).append(job.job_id)
            stats.jobs_submitted += 1
            stats.dedupe_hits += 1
            self.metrics.counter(
                "repro_dedupe_hits_total", "in-queue dedupe followers"
            ).inc()
            return job.job_id
        # Queue first: a rejected submission must leave no server state.
        self.scheduler.submit(job)
        self._jobs[job.job_id] = job
        if key is not None:
            self._dedupe[key] = job.job_id
            if self._cache_capacity > 0:
                stats.cache_misses += 1
                self.metrics.counter(
                    "repro_cache_misses_total",
                    "cacheable jobs that had to execute",
                ).inc()
                self._pending_cache[job.job_id] = key
        return job.job_id

    # ------------------------------------------------------------------
    # Result cache (content-addressed, ROADMAP "result caching")
    # ------------------------------------------------------------------

    def _cache_key(self, session: Session, job: Job, raw_operands: tuple,
                   circuit_digest: bytes = b"",
                   opt_level: str = "") -> tuple | None:
        """Content address of a raw-op or circuit job (``None`` otherwise).

        Legacy in-process app jobs are excluded (their payloads are
        verified against a plaintext reference on every run). The
        evaluation-key digest keeps tenants with identical parameters but
        different relin/Galois keys from ever sharing an entry, and the
        backend name keeps a request for a specific execution path honest
        (all backends return the same bytes, but a tenant asking for chip
        fidelity gets it). Circuit jobs additionally fold in
        ``circuit_digest`` — the SHA-256 of the circuit's wire encoding,
        computed by :meth:`submit` straight from the received frame — so
        two tenants submitting the same program on the same inputs share
        one execution, and two different programs never can.

        The same address drives both the result cache and in-queue
        dedupe, so dedupe stays on when caching is disabled.
        """
        if job.kind.is_app:
            return None
        operands = hashlib.sha256()
        for raw, ct in zip(raw_operands, job.operands):
            data = (
                bytes(raw) if isinstance(raw, (bytes, bytearray))
                else serialize_ciphertext(ct)
            )
            operands.update(hashlib.sha256(data).digest())
        return (
            session.digest,
            job.kind.value,
            job.steps,
            circuit_digest,
            # The effective optimization level is part of a circuit's
            # address: "lazy" serves different (plaintext-equal) bytes
            # than "exact"/"none", so the levels must never share an
            # entry. Raw ops are untouched by the optimizer.
            opt_level if job.kind is JobKind.CIRCUIT else "",
            job.backend or self.scheduler.default,
            self._eval_key_digest(session, job),
            operands.digest(),
        )

    def _eval_key_digest(self, session: Session, job: Job) -> bytes:
        """Digest of the evaluation key material the job would use."""
        if job.kind is JobKind.CIRCUIT:
            parts = []
            if job.payload.uses_relin:
                key = session.relin
                if key is None:
                    return b"no-relin"  # the job will fail; never cached
                parts.append(self._key_digest(
                    key, lambda: serialize_relin_key(key, session.params)
                ))
            if job.payload.uses_rotations:
                try:
                    exponents = rotation_exponents(
                        job.payload, session.params
                    )
                except CircuitError:
                    return b"invalid-rotation"
                for exponent in exponents:
                    gkey = session.galois.get(exponent)
                    if gkey is None:
                        return b"no-galois"
                    parts.append(self._key_digest(
                        gkey,
                        lambda k=gkey: serialize_galois_key(k, session.params),
                    ))
            return b"".join(parts)  # b"" for linear circuits: no key material
        if job.kind in (JobKind.MULTIPLY, JobKind.SQUARE,
                        JobKind.RELINEARIZE):
            key = session.relin
            if key is None:
                return b"no-relin"  # a relin circuit will fail; never cached
            return self._key_digest(
                key, lambda: serialize_relin_key(key, session.params)
            )
        if job.kind is JobKind.ROTATE:
            try:
                exponent = _galois_exponent(session, job.steps)
            except BackendError:
                return b"invalid-rotation"  # the job will fail; never cached
            key = session.galois.get(exponent)
            if key is None:
                return b"no-galois"
            return self._key_digest(
                key, lambda: serialize_galois_key(key, session.params)
            )
        return b""  # add/sub use no key material

    def _key_digest(self, key: object, make_bytes) -> bytes:
        """Memoized SHA-256 of a serialized evaluation key (LRU-bounded).

        Memoization is by object identity; each live entry holds a
        reference to its key so a recycled ``id`` can never alias a
        replaced upload, and eviction only drops the memo — a re-digest
        of an evicted key is merely recomputed.
        """
        entry = self._key_digests.get(id(key))
        if entry is None or entry[0] is not key:
            entry = (key, hashlib.sha256(make_bytes()).digest())
            self._key_digests[id(key)] = entry
        self._key_digests.move_to_end(id(key))
        while len(self._key_digests) > self._key_digest_capacity:
            self._key_digests.popitem(last=False)
        return entry[1]

    def _harvest_cache(self) -> None:
        """Settle completion bookkeeping after scheduler progress.

        Moves freshly completed cacheable results into the cache (LRU),
        sheds dedupe followers whose deadline expired while their primary
        is still in flight, fans a completed primary's result (or
        failure) out to its surviving followers, and retires content
        addresses whose primary finished — the next identical submit then
        hits the result cache, or re-executes if the primary failed or
        caching is off.
        """
        if self._followers:
            self._shed_expired_followers()
        if self._pending_cache:
            finished = [
                jid for jid in self._pending_cache if self._jobs[jid].done
            ]
            for jid in finished:
                key = self._pending_cache.pop(jid)
                job = self._jobs[jid]
                # Raw ops cache a Ciphertext; circuits their output map.
                if job.status is JobStatus.DONE and job.result is not None:
                    self._result_cache[key] = job.result
                    self._result_cache.move_to_end(key)
                    while len(self._result_cache) > self._cache_capacity:
                        self._result_cache.popitem(last=False)
        if self._followers:
            stats = self.scheduler.stats
            done_primaries = [
                jid for jid in self._followers if self._jobs[jid].done
            ]
            for jid in done_primaries:
                primary = self._jobs[jid]
                for fid in self._followers.pop(jid):
                    follower = self._jobs[fid]
                    # The primary's batch window is the follower's
                    # latency too: adopt those spans (clipped at the
                    # follower's own queue time) so the profiler stops
                    # attributing follower wall time to queue_wait.
                    adopt_batch_spans(follower.trace, primary.trace)
                    if primary.status is JobStatus.DONE:
                        follower.finish(primary.result)
                    else:
                        follower.fail(primary.error or "primary job failed")
                    follower.metrics.batch_id = primary.metrics.batch_id
                    stats.settle(follower)
        if self._dedupe:
            for key in [
                k for k, jid in self._dedupe.items() if self._jobs[jid].done
            ]:
                del self._dedupe[key]

    def _shed_expired_followers(self) -> None:
        """Fail dedupe followers whose deadline passed mid-flight.

        A follower attached to an in-flight primary sits in no scheduler
        queue, so the scheduler's batch-plan shed never visits it;
        without this sweep an expired follower would settle late with the
        primary's eventual result instead of failing with the typed
        ``deadline expired`` error. Followers of a primary that has
        already completed are left to the fan-out in the same harvest —
        their result is ready, not late.
        """
        now = time.monotonic()
        stats = self.scheduler.stats
        for pid in list(self._followers):
            if self._jobs[pid].done:
                continue
            keep: list[str] = []
            for fid in self._followers[pid]:
                follower = self._jobs[fid]
                if follower.deadline is None or follower.deadline > now:
                    keep.append(fid)
                    continue
                follower.fail("deadline expired awaiting deduped execution")
                stats.settle(follower)
                self.metrics.counter(
                    "repro_deadline_shed_total",
                    "jobs failed past their deadline",
                    stage="follower", tenant=follower.tenant,
                ).inc()
                self.metrics.counter(
                    "repro_jobs_settled_total", "jobs settled by outcome",
                    tenant=follower.tenant, outcome="failed",
                ).inc()
            if keep:
                self._followers[pid] = keep
            else:
                del self._followers[pid]

    # ------------------------------------------------------------------
    # Progress and results
    # ------------------------------------------------------------------

    def _job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def poll(self, job_id: str) -> JobStatus:
        """Report a job's status, advancing the scheduler one batch tick."""
        job = self._job(job_id)
        if not job.done:
            self.tick()
        return job.status

    def status(self, job_id: str) -> JobStatus:
        """Report a job's status without advancing the scheduler.

        The read-only sibling of :meth:`poll`, for callers (the async
        transport) that drive execution elsewhere.
        """
        return self._job(job_id).status

    def job_error(self, job_id: str) -> str | None:
        """The failure message of a failed job (``None`` otherwise)."""
        return self._job(job_id).error

    def tick(self) -> bool:
        """Advance the scheduler by one batch; ``True`` if work was done.

        Completion bookkeeping (result-cache harvest, dedupe fan-out)
        runs even on an idle tick, so a caller looping ``tick()`` until
        it returns ``False`` observes every job settled.
        """
        report = self.scheduler.step()
        self._harvest_cache()
        return report is not None

    def result(self, job_id: str, wire: bool = True) -> object:
        """Block (drive the scheduler) until the job finishes.

        Raw-op and circuit results return as wire bytes by default — the
        server hands back exactly what would cross a transport: a framed
        ciphertext for raw ops, a framed named-output map for circuits.
        ``wire=False`` returns the in-memory object; legacy app-level
        results are always objects.

        Raises:
            RuntimeError: if the job failed (message carries the cause).
        """
        job = self._job(job_id)
        while not job.done:
            if self.scheduler.step() is None:
                break
        self._harvest_cache()
        if job.status is JobStatus.FAILED:
            raise RuntimeError(f"job {job_id} failed: {job.error}")
        if not job.done:
            raise RuntimeError(f"job {job_id} is still {job.status.value}")
        if isinstance(job.result, (bytes, bytearray)):
            # Fleet results already travel as framed wire bytes; hand
            # them back verbatim (wire=False has no object to return).
            return bytes(job.result)
        if wire and isinstance(job.result, Ciphertext):
            with job.trace.span("serialize"):
                return serialize_ciphertext(job.result)
        if wire and job.kind is JobKind.CIRCUIT:
            with job.trace.span("serialize"):
                return serialize_circuit_outputs(job.result)
        return job.result

    def job_metrics(self, job_id: str):
        return self._job(job_id).metrics

    def run(self) -> ServiceStats:
        """Drain every queued job."""
        stats = self.scheduler.run_all()
        self._harvest_cache()
        return stats

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def throughput_rows(self) -> list[dict]:
        """Per-backend throughput summary (jobs/sec over attributed time)."""
        rows = []
        for name, backend in sorted(self.backends.items()):
            if backend.jobs_done == 0:
                continue
            wall = backend.wall_seconds()
            row = {
                "backend": backend.name,
                "jobs": backend.jobs_done,
                "wall_s": wall,
                "jobs_per_s": backend.jobs_done / wall if wall > 0 else float("inf"),
            }
            if isinstance(backend, ChipPoolBackend):
                row["pool"] = len(backend.workers)
                row["wall_cycles"] = backend.wall_cycles
                row["total_cycles"] = backend.total_cycles
            rows.append(row)
        return rows

    def pool_report(self) -> dict:
        """Tower-sharding view of the chip pool: makespan and fidelity.

        Two wall-time views against ``total_cycles`` of work:
        ``wall_cycles`` (max cumulative per-worker busy cycles — the
        utilization view, assuming work from different batches overlaps
        freely) and ``batch_makespan_cycles`` (sum of per-batch makespans
        — the conservative view under the per-batch gather barrier;
        always >= ``wall_cycles``). ``per_worker_cycles`` shows the
        spread, ``tower_cycles`` the per-tower totals over every
        chip-executed batch, ``fidelity`` counts jobs per execution
        path (``chip`` / ``model`` / ``relin_model``), and
        ``result_cache`` reports the content-addressed machinery: cache
        hits complete at submit time and cost the pool nothing, and
        ``dedupe_hits`` counts in-queue dedupe followers — identical
        jobs submitted before the first completed, attached to its one
        execution with the result fanned out.
        """
        pool = self.chip_pool
        stats = self.scheduler.stats
        tower_totals: dict[int, int] = {}
        for report in stats.batches:
            for t, c in enumerate(report.tower_cycles):
                tower_totals[t] = tower_totals.get(t, 0) + c
        return {
            "pool": len(pool.workers),
            "wall_cycles": pool.wall_cycles,
            "batch_makespan_cycles": stats.makespan_cycles,
            "total_cycles": pool.total_cycles,
            "per_worker_cycles": [w.busy_cycles for w in pool.workers],
            "tower_cycles": [
                tower_totals[t] for t in sorted(tower_totals)
            ],
            "fidelity": stats.fidelity,
            "per_tenant_completed": dict(stats.per_tenant_completed),
            "per_tenant_failed": dict(stats.per_tenant_failed),
            "result_cache": {
                "hits": stats.cache_hits,
                "misses": stats.cache_misses,
                "dedupe_hits": stats.dedupe_hits,
                "entries": len(self._result_cache),
                "capacity": self._cache_capacity,
            },
        }

    def fleet_report(self) -> dict:
        """Worker-fleet liveness/requeue view (raises without a fleet)."""
        if self.fleet is None:
            raise RuntimeError("this server runs no fleet (fleet_size=0)")
        return self.fleet.fleet_report()

    # ------------------------------------------------------------------
    # Telemetry exposition
    # ------------------------------------------------------------------

    def stats_text(self) -> str:
        """Prometheus-style text rendering of every metric (STATS reply)."""
        return self.metrics.render()

    def stats_snapshot(self) -> dict:
        """Structured metrics snapshot (counters, gauges, percentiles)."""
        return self.metrics.snapshot()

    def job_trace(self, job_id: str):
        """The :class:`~repro.service.telemetry.JobTrace` of a known job.

        Raises ``KeyError`` for unknown job ids (the transport turns
        that into a wire ``ERROR`` frame, mirroring ``status``).
        """
        return self._job(job_id).trace

    def phase_report(self, backend: str = "", until_done: bool = True):
        """Aggregate phase attribution over every settled job's trace.

        Args:
            backend: restrict to jobs whose :class:`JobMetrics` name this
                backend (``""`` aggregates everything, including cache
                and dedupe settlements).
            until_done: stop each job's attribution at completion,
                excluding post-completion serialize/reply time from both
                numerator and denominator.

        Returns the :func:`~repro.service.telemetry.aggregate_phases`
        rows — per-phase seconds and percent of summed job wall time,
        with a trailing ``"(total)"`` coverage row.
        """
        if backend in self.backends:
            # Accept the registry key ("chip_pool") as well as the
            # backend's display name ("chip_pool_x4").
            backend = self.backends[backend].name
        traces = [
            job.trace for job in self._jobs.values()
            if job.done and job.trace.enabled
            and (not backend or job.metrics.backend == backend)
        ]
        return aggregate_phases(traces, until_done=until_done)
