"""End-to-end serving telemetry: span tracing and a metrics registry.

The ROADMAP's top perf item — "close the end-to-end Amdahl gap" — was
unactionable while ``JobMetrics.seconds`` stayed one opaque number per
job: BENCH_kernels.json shows kernels 16–27x faster batched while the
serving path improved only ~2–2.6x, and nothing said *where* the rest of
``serve_job`` time goes. This module is the measurement substrate:

* **Span tracing** — every job carries a :class:`JobTrace` of
  monotonic-clock phase spans (:data:`PHASES` is the glossary), recorded
  through a context-manager/mark API by the server, scheduler, backends,
  and transport. Tracing defaults **on**; ``REPRO_TRACE=off`` swaps every
  job's trace for the shared :data:`NULL_TRACE` singleton whose ``span``
  returns one preallocated no-op context manager — the submit path then
  pays a single attribute lookup per span site (the overhead-guard test
  holds it under 2% of submit latency).
* **Metrics registry** — named counters, gauges, and fixed-bucket
  latency histograms (p50/p95/p99 derivable from bucket counts without
  storing samples), with optional labels. :meth:`MetricsRegistry.render`
  emits the Prometheus text exposition format that travels in the wire
  ``STATS`` reply; :meth:`MetricsRegistry.snapshot` feeds the
  ``repro-serve --stats-interval`` structured-log line.
* **Phase attribution** — :func:`aggregate_phases` folds many traces
  into the per-phase wall-time table ``tools/profile_serve.py`` prints
  and writes to ``BENCH_serve_phases.json``.

Batch-section phases (``batch_plan``, ``tower_dispatch``,
``worker_execute``, ``gather_barrier``) are attributed to **every job of
the batch**: the job's wall clock is ticking during them even when
another job's towers occupy the workers. A job's *own* work inside a
shared section (its tower runs, say) appears as child spans of the
section span, so the ``TRACE`` tree still shows who computed what.
"""

from __future__ import annotations

import bisect
import os
import threading
import time
from dataclasses import dataclass, field

#: Span-phase glossary, in canonical pipeline order. Not every job has
#: every phase: only chip-native tensors see ``tower_dispatch`` /
#: ``worker_execute`` / ``gather_barrier``, only keyed tensors a
#: ``relin_tail``, and only transport-served jobs a ``reply``.
PHASES = (
    "submit",          # FheServer.submit, end to end (decode/cache children)
    "decode",          # operand + circuit wire-bytes ingest (child of submit)
    "cache_check",     # content address + cache/dedupe lookup (child)
    "queue_wait",      # submit settled -> batch formation began
    "batch_plan",      # scheduler.next_batch for the job's batch
    "batch_wait",      # inside the batch, waiting on sibling jobs
    "execute",         # host-side functional execution (the exact math)
    "tower_dispatch",  # planning the per-tower fan-out for a level
    "worker_execute",  # chip workers running a level's tower units
    "gather_barrier",  # settling the level's tower gather
    "crt_recombine",   # CRT recombination of gathered tower outputs
    "keyswitch",       # batched chip-side key-switch fold (engine-capable)
    "relin_tail",      # pricing/charging the relinearization tail
    "serialize",       # result -> wire bytes
    "reply",           # transport writing the completion frame
)

_PHASE_ORDER = {name: i for i, name in enumerate(PHASES)}


def tracing_enabled() -> bool:
    """Whether new jobs get a recording trace (``REPRO_TRACE``, default on)."""
    return os.environ.get("REPRO_TRACE", "on").lower() not in (
        "off", "0", "false", "no"
    )


@dataclass
class Span:
    """One recorded phase: ``[start, end]`` on the monotonic clock.

    ``parent`` is the index of the enclosing span within the same trace
    (``-1`` for a top-level phase) — enough to rebuild the span tree
    after a wire round-trip without carrying object references.
    """

    phase: str
    start: float
    end: float
    parent: int = -1

    @property
    def seconds(self) -> float:
        return self.end - self.start


class _SpanCtx:
    """Context manager recording one span (allocated only when tracing)."""

    __slots__ = ("_trace", "_phase", "_index")

    def __init__(self, trace: "JobTrace", phase: str):
        self._trace = trace
        self._phase = phase

    def __enter__(self) -> "_SpanCtx":
        trace = self._trace
        parent = trace._stack[-1] if trace._stack else -1
        self._index = len(trace.spans)
        trace.spans.append(Span(self._phase, time.perf_counter(), 0.0, parent))
        trace._stack.append(self._index)
        return self

    def __exit__(self, *exc_info) -> None:
        trace = self._trace
        trace.spans[self._index].end = time.perf_counter()
        trace._stack.pop()


class _NullSpanCtx:
    """The one preallocated no-op context manager tracing-off jobs share."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanCtx":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_CTX = _NullSpanCtx()


class JobTrace:
    """Phase spans of one job, on one shared monotonic clock.

    Recording API (all near-zero-cost when the job carries
    :data:`NULL_TRACE` instead):

    * ``with trace.span("execute"): ...`` — a live phase; nesting makes
      the inner span a child of the outer.
    * ``trace.mark("queue_wait", t0, t1)`` — a phase whose endpoints
      were computed elsewhere (the scheduler stamps queue wait from the
      submit-settled timestamp it did not own).
    * ``trace.stamp_queued()`` / ``trace.stamp_done()`` — lifecycle
      timestamps: queued marks the submit settling (queue-wait origin),
      done marks job completion (the end-to-end latency denominator the
      profiler uses; serialize/reply happen after it).
    """

    __slots__ = ("spans", "_stack", "queued_at", "done_at")

    enabled = True

    def __init__(self):
        self.spans: list[Span] = []
        self._stack: list[int] = []
        self.queued_at: float | None = None
        self.done_at: float | None = None

    # -- recording -----------------------------------------------------

    def span(self, phase: str) -> _SpanCtx:
        return _SpanCtx(self, phase)

    def mark(self, phase: str, start: float, end: float,
             parent: int = -1) -> int:
        """Record a completed span; returns its index (for child marks)."""
        index = len(self.spans)
        self.spans.append(Span(phase, start, end, parent))
        return index

    def stamp_queued(self) -> None:
        self.queued_at = time.perf_counter()

    def stamp_done(self) -> None:
        if self.done_at is None:  # first completion wins (dedupe fan-out)
            self.done_at = time.perf_counter()

    # -- reading -------------------------------------------------------

    @property
    def started_at(self) -> float | None:
        return self.spans[0].start if self.spans else None

    @property
    def wall_seconds(self) -> float:
        """Submit start -> job completion (0.0 before either exists)."""
        if not self.spans or self.done_at is None:
            return 0.0
        return max(0.0, self.done_at - self.spans[0].start)

    def phase_seconds(self, until_done: bool = False) -> dict[str, float]:
        """Total seconds per **top-level** phase (children excluded).

        ``until_done`` restricts to spans that started before
        :attr:`done_at` — the serving-latency view the profiler divides
        by :attr:`wall_seconds` (serialize/reply happen after
        completion and would overshoot the denominator).
        """
        totals: dict[str, float] = {}
        for span in self.spans:
            if span.parent != -1:
                continue
            if until_done and self.done_at is not None \
                    and span.start >= self.done_at:
                continue
            totals[span.phase] = totals.get(span.phase, 0.0) + span.seconds
        return totals

    def tree_lines(self) -> list[str]:
        """Render the span tree, one indented line per span."""
        depths: list[int] = []
        for span in self.spans:
            depths.append(0 if span.parent < 0 else depths[span.parent] + 1)
        origin = self.started_at or 0.0
        return [
            f"{'  ' * depth}{span.phase:<16} "
            f"+{(span.start - origin) * 1e6:9.1f}us "
            f"{span.seconds * 1e6:9.1f}us"
            for span, depth in zip(self.spans, depths)
        ]


class _NullTrace:
    """Tracing-off stand-in: every operation is a no-op, nothing allocates."""

    __slots__ = ()

    enabled = False
    spans: tuple = ()
    queued_at = None
    done_at = None

    def span(self, phase: str) -> _NullSpanCtx:
        return _NULL_CTX

    def mark(self, phase: str, start: float, end: float,
             parent: int = -1) -> int:
        return -1

    def stamp_queued(self) -> None:
        pass

    def stamp_done(self) -> None:
        pass

    @property
    def started_at(self) -> None:
        return None

    wall_seconds = 0.0

    def phase_seconds(self, until_done: bool = False) -> dict[str, float]:
        return {}

    def tree_lines(self) -> list[str]:
        return []


NULL_TRACE = _NullTrace()


def new_trace() -> JobTrace | _NullTrace:
    """A recording trace, or the shared null trace when ``REPRO_TRACE=off``."""
    return JobTrace() if tracing_enabled() else NULL_TRACE


#: Top-level phases that constitute a batch's execution window — what a
#: dedupe follower inherits from the primary whose single execution
#: produced its result (see :func:`adopt_batch_spans`).
BATCH_WINDOW_PHASES = frozenset((
    "queue_wait", "batch_plan", "batch_wait", "execute", "tower_dispatch",
    "worker_execute", "gather_barrier", "crt_recombine", "keyswitch",
    "relin_tail",
))


def adopt_batch_spans(follower, primary) -> int:
    """Copy a primary's batch-window spans onto a dedupe follower.

    A follower attached to a deduped execution used to get only
    ``stamp_done``: its wall clock covered the primary's whole batch but
    its trace explained none of it, so the profiler under-attributed the
    follower's latency to ``queue_wait``. This clips the primary's
    top-level :data:`BATCH_WINDOW_PHASES` spans at the follower's own
    ``queued_at`` (spans that ended before the follower existed are not
    its latency) and records them as the follower's top-level spans;
    any remaining gap between queueing and the first adopted span is
    marked ``queue_wait``. Returns the number of spans copied; no-op
    (returning 0) unless both traces are recording.
    """
    if not (follower.enabled and primary.enabled):
        return 0
    origin = follower.queued_at
    copied = 0
    earliest = None
    for span in primary.spans:
        if span.parent != -1 or span.phase not in BATCH_WINDOW_PHASES:
            continue
        start = span.start
        if origin is not None:
            if span.end <= origin:
                continue
            start = max(start, origin)
        follower.mark(span.phase, start, span.end)
        earliest = start if earliest is None else min(earliest, start)
        copied += 1
    if copied and origin is not None and earliest > origin:
        follower.mark("queue_wait", origin, earliest)
    return copied


def aggregate_phases(traces, until_done: bool = True) -> list[dict]:
    """Fold many traces into a per-phase wall-time attribution table.

    Returns one row per observed phase, in canonical :data:`PHASES`
    order: ``{"phase", "seconds", "percent", "spans"}`` where
    ``percent`` is of the summed per-job wall (submit start -> done).
    The final row aggregates everything: phase ``"(total)"`` with
    ``percent`` the coverage — how much of the measured end-to-end
    latency the recorded phases explain.
    """
    seconds: dict[str, float] = {}
    spans: dict[str, int] = {}
    wall = 0.0
    for trace in traces:
        wall += trace.wall_seconds
        for phase, secs in trace.phase_seconds(until_done=until_done).items():
            seconds[phase] = seconds.get(phase, 0.0) + secs
            spans[phase] = spans.get(phase, 0) + 1
    rows = [
        {
            "phase": phase,
            "seconds": seconds[phase],
            "percent": 100.0 * seconds[phase] / wall if wall > 0 else 0.0,
            "spans": spans[phase],
        }
        for phase in sorted(
            seconds, key=lambda p: _PHASE_ORDER.get(p, len(PHASES))
        )
    ]
    covered = sum(r["seconds"] for r in rows)
    rows.append({
        "phase": "(total)",
        "seconds": covered,
        "percent": 100.0 * covered / wall if wall > 0 else 0.0,
        "spans": sum(spans.values()),
    })
    return rows


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

#: Default latency buckets (seconds): micro-benchmark to paper scale.
DEFAULT_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Instantaneous value that can move both ways."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram: percentiles without storing samples.

    ``buckets`` are ascending finite upper bounds; an implicit ``+inf``
    bucket catches the tail. :meth:`quantile` follows the Prometheus
    ``histogram_quantile`` estimate — linear interpolation inside the
    bucket the requested rank falls in (the +inf bucket reports its
    finite lower edge, the most defensible answer available without
    samples).
    """

    __slots__ = ("name", "labels", "bounds", "counts", "total", "count")

    def __init__(self, name: str, labels: tuple = (),
                 buckets: tuple = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histograms need at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly ascending")
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # +inf is implicit
            if not bounds:
                raise ValueError("histograms need a finite bucket bound")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # + the implicit +inf bucket
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 <= q <= 1); NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile wants q in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if i >= len(self.bounds):  # +inf bucket: its finite edge
                    return self.bounds[-1]
                lower = self.bounds[i - 1] if i else 0.0
                upper = self.bounds[i]
                into = (rank - (cumulative - bucket_count)) / bucket_count
                return lower + (upper - lower) * min(max(into, 0.0), 1.0)
        return self.bounds[-1]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")


_METRIC_TYPES = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


def _format_value(value: float) -> str:
    """Prometheus-style number: integers unadorned, floats repr'd."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_text(labels: tuple) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{str(val)}"' for key, val in labels
    )
    return "{" + inner + "}"


class MetricsRegistry:
    """Named metrics with optional labels, one instance per server.

    ``registry.counter("jobs_total", tenant="acme").inc()`` creates the
    family on first use and returns the same child on every later call
    with the same labels. A name registered as one type cannot be reused
    as another. All mutation in this repo happens on the server's single
    engine thread; :meth:`render`/:meth:`snapshot` take the registry
    lock so a reader on another thread (the transport's STATS path, the
    periodic stats logger) sees a consistent dump.
    """

    def __init__(self):
        self._metrics: dict[tuple, object] = {}
        self._families: dict[str, tuple[type, str, tuple | None]] = {}
        self._lock = threading.Lock()

    # -- construction --------------------------------------------------

    def _get(self, cls: type, name: str, help_text: str,
             buckets: tuple | None, labels: dict):
        label_key = tuple(sorted(labels.items()))
        key = (name, label_key)
        metric = self._metrics.get(key)
        if metric is not None:
            if not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} is a "
                    f"{_METRIC_TYPES[type(metric)]}, not a "
                    f"{_METRIC_TYPES[cls]}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                family = self._families.get(name)
                if family is not None and family[0] is not cls:
                    raise ValueError(
                        f"metric {name!r} is registered as a "
                        f"{_METRIC_TYPES[family[0]]}, not a "
                        f"{_METRIC_TYPES[cls]}"
                    )
                if family is None:
                    self._families[name] = (cls, help_text, buckets)
                if cls is Histogram:
                    metric = Histogram(
                        name, label_key,
                        buckets or self._families[name][2] or DEFAULT_BUCKETS,
                    )
                else:
                    metric = cls(name, label_key)
                self._metrics[key] = metric
        return metric

    def counter(self, name: str, help_text: str = "", **labels) -> Counter:
        return self._get(Counter, name, help_text, None, labels)

    def gauge(self, name: str, help_text: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help_text, None, labels)

    def histogram(self, name: str, help_text: str = "",
                  buckets: tuple | None = None, **labels) -> Histogram:
        return self._get(Histogram, name, help_text, buckets, labels)

    # -- exposition ----------------------------------------------------

    def render(self) -> str:
        """Prometheus text exposition of every registered metric."""
        with self._lock:
            lines: list[str] = []
            for name in sorted(self._families):
                cls, help_text, _ = self._families[name]
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {_METRIC_TYPES[cls]}")
                children = sorted(
                    (m for (n, _), m in self._metrics.items() if n == name),
                    key=lambda m: m.labels,
                )
                for metric in children:
                    if isinstance(metric, Histogram):
                        cumulative = 0
                        for bound, count in zip(
                            metric.bounds + (float("inf"),), metric.counts
                        ):
                            cumulative += count
                            le = "+Inf" if bound == float("inf") else \
                                _format_value(bound)
                            labels = metric.labels + (("le", le),)
                            lines.append(
                                f"{name}_bucket{_label_text(labels)} "
                                f"{cumulative}"
                            )
                        lines.append(
                            f"{name}_sum{_label_text(metric.labels)} "
                            f"{_format_value(metric.total)}"
                        )
                        lines.append(
                            f"{name}_count{_label_text(metric.labels)} "
                            f"{metric.count}"
                        )
                    else:
                        lines.append(
                            f"{name}{_label_text(metric.labels)} "
                            f"{_format_value(metric.value)}"
                        )
            return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """JSON-ready dump: ``{name: {label_text: value_or_summary}}``.

        Histograms summarize as ``{count, sum, p50, p95, p99}`` — the
        shape the ``--stats-interval`` structured-log line emits.
        """
        with self._lock:
            out: dict[str, dict] = {}
            for (name, _), metric in sorted(
                self._metrics.items(), key=lambda kv: kv[0]
            ):
                family = out.setdefault(name, {})
                label_text = _label_text(metric.labels) or ""
                if isinstance(metric, Histogram):
                    # Empty histograms report null, not NaN — the dump
                    # must stay strict-JSON for log pipelines.
                    empty = metric.count == 0
                    family[label_text] = {
                        "count": metric.count,
                        "sum": metric.total,
                        "p50": None if empty else metric.quantile(0.50),
                        "p95": None if empty else metric.quantile(0.95),
                        "p99": None if empty else metric.quantile(0.99),
                    }
                else:
                    family[label_text] = metric.value
            return out
