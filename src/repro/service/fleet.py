"""Multi-process worker fleet: scale the chip pool past one interpreter.

The GIL caps the single-process serving stack regardless of kernel
speed, and one crash kills the whole service. This module promotes the
chip pool to a fleet of worker **processes** (the tf-encrypted
secure-runtime shape: an orchestrator configures long-lived workers and
routes work to them):

* **Workers** — each worker process owns a chip subset (its own
  :class:`~repro.service.backends.ChipPoolBackend`) and its own engine
  caches, and speaks the repo's one wire format over a
  ``multiprocessing`` pipe: WORKER_KEYS / WORKER_JOB down,
  WORKER_RESULT / WORKER_HEARTBEAT up (tags 0x20+). ``mode="thread"``
  runs the *identical* worker loop in a thread — same protocol, same
  fault hooks — for fast deterministic tests.
* **Routing** — the front door routes a batch by its session's params
  digest: :func:`route_index` picks ``digest % fleet_size``, scanning
  forward to the first live worker. All jobs of one scheduler batch
  share a digest (batches are keyed on it), so a batch lands whole on
  one worker and that worker's engine/twiddle caches stay hot for the
  parameter sets hashed to it.
* **Key replication** — evaluation keys replicate to a worker on first
  use via the existing key-registry wire encoding (a framed params
  message plus framed relin/Galois key messages inside WORKER_KEYS),
  re-sent only when the front door observes new key material. Secret
  keys never existed server-side, so nothing secret crosses the pipe.
* **Liveness** — workers heartbeat on an interval; the orchestrator
  evicts a worker whose beacon goes quiet (re-admitting it on the next
  beat) and detects death outright (EOF / dead process), requeueing
  every in-flight job onto surviving workers — capped at
  ``max_attempts`` placements, after which the job fails cleanly.
  Corrupted replies (the CRC catches them) requeue the same way. A
  ``job -> worker`` ownership map discards stale duplicate results, so
  a job settles exactly once no matter how many workers raced on it.
* **Fault injection** — ``REPRO_FAULT`` (or an injected spec) arms a
  deterministic :class:`FaultPlan` inside chosen workers: kill the
  worker before its Nth result, skip N heartbeats, bit-flip the Nth
  reply, or stall (swallow the Nth result while staying live — the
  deadline-reaping scenario). Counts, not timers — the chaos battery
  replays recovery paths exactly.

Overload hardening rides the same machinery: ``spill_threshold`` turns
digest-pinned routing into spill-over routing (a saturated home worker
sheds to the next live worker that already holds the session's keys),
:meth:`FleetBackend.grow`/:meth:`FleetBackend.shrink` resize the fleet
at runtime by reusing the spawn/retire paths, and jobs carrying a
deadline are reaped from assignments and backlogs past it — their late
results discarded by the same ownership map that drops stale requeue
duplicates.

The scheduler drives all of this through the async backend interface
(:meth:`FleetBackend.dispatch_batch` / :meth:`FleetBackend.poll`):
dispatch never blocks, so batches for different digests overlap across
workers, which is where the multi-process speedup comes from.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path

from repro.bfv.scheme import Ciphertext
from repro.service.backends import Backend, BatchReport, ChipPoolBackend
from repro.service.jobs import Job, JobKind, JobStatus
from repro.service.registry import SessionRegistry
from repro.service.serialization import (
    TAG_WORKER_FAULTS,
    TAG_WORKER_HEARTBEAT,
    TAG_WORKER_JOB,
    TAG_WORKER_KEYS,
    TAG_WORKER_RESULT,
    WireFormatError,
    WorkerHeartbeatMsg,
    WorkerJobMsg,
    WorkerKeysMsg,
    WorkerResultMsg,
    decode_worker_faults,
    decode_worker_heartbeat,
    decode_worker_job,
    decode_worker_keys,
    decode_worker_result,
    deserialize_circuit,
    deserialize_galois_key,
    deserialize_params,
    deserialize_relin_key,
    encode_worker_heartbeat,
    encode_worker_job,
    encode_worker_keys,
    encode_worker_result,
    peek_tag,
    serialize_ciphertext,
    serialize_circuit,
    serialize_circuit_outputs,
    serialize_galois_key,
    serialize_params,
    serialize_relin_key,
    verify_frame,
)
from repro.service.telemetry import NULL_TRACE


class FaultSpecError(ValueError):
    """Malformed ``REPRO_FAULT`` / :meth:`FaultPlan.parse` spec."""


def route_index(digest: bytes, size: int) -> int:
    """The routing rule: a params digest's preferred worker index.

    Deterministic and stateless — the first 8 digest bytes mod the fleet
    size — so every component (and every test) can predict where a
    session's work lands:

    >>> route_index(bytes(range(32)), 4)
    3
    >>> route_index(bytes(range(32)), 1)
    0
    """
    if size < 1:
        raise ValueError("fleet size must be >= 1")
    return int.from_bytes(digest[:8], "big") % size


# ----------------------------------------------------------------------
# Deterministic fault injection
# ----------------------------------------------------------------------

_FAULT_ACTIONS = ("kill", "corrupt", "delay_heartbeat", "stall")


@dataclass(frozen=True)
class FaultRule:
    """One armed fault: *action* on *worker* at a counted point.

    ``job`` is the 1-based index of the worker's result send the fault
    fires on (``kill`` dies instead of sending it, ``corrupt`` bit-flips
    its payload, ``stall`` swallows it — the worker keeps heartbeating
    and serves later jobs, but this one's reply never leaves); ``beats``
    is how many heartbeats ``delay_heartbeat`` suppresses, starting from
    the worker's hello.
    """

    action: str
    worker: int
    job: int = 1
    beats: int = 1

    def render(self) -> str:
        text = f"{self.action}:worker={self.worker}"
        if self.action == "delay_heartbeat":
            return f"{text}:beats={self.beats}"
        return f"{text}:job={self.job}"


class FaultPlan:
    """A parsed, deterministic fault schedule for the whole fleet.

    Grammar (see ``docs/fleet.md``): clauses joined by ``;``, each
    ``action:key=value:...`` with actions ``kill`` / ``corrupt`` /
    ``delay_heartbeat`` / ``stall`` and keys ``worker`` (required),
    ``job`` (1-based result count), ``beats`` (heartbeats to skip):

    >>> plan = FaultPlan.parse("kill:worker=1:job=3; corrupt:worker=0")
    >>> [rule.render() for rule in plan.rules]
    ['kill:worker=1:job=3', 'corrupt:worker=0:job=1']
    >>> FaultPlan.parse("").rules
    ()
    """

    def __init__(self, rules: tuple[FaultRule, ...] = ()):
        self.rules = tuple(rules)

    @classmethod
    def parse(cls, spec: str | None) -> "FaultPlan":
        rules = []
        for clause in (spec or "").split(";"):
            clause = clause.strip()
            if not clause:
                continue
            action, _, rest = clause.partition(":")
            action = action.strip()
            if action not in _FAULT_ACTIONS:
                raise FaultSpecError(
                    f"unknown fault action {action!r} "
                    f"(supported: {', '.join(_FAULT_ACTIONS)})"
                )
            fields = {"worker": None, "job": 1, "beats": 1}
            for part in filter(None, (p.strip() for p in rest.split(":"))):
                key, sep, value = part.partition("=")
                key = key.strip()
                if not sep or key not in fields:
                    raise FaultSpecError(
                        f"bad fault clause field {part!r} in {clause!r} "
                        "(expected worker=/job=/beats=)"
                    )
                try:
                    fields[key] = int(value)
                except ValueError:
                    raise FaultSpecError(
                        f"fault field {key!r} wants an integer, got {value!r}"
                    ) from None
            if fields["worker"] is None:
                raise FaultSpecError(f"fault clause {clause!r} needs worker=")
            if fields["job"] < 1 or fields["beats"] < 1:
                raise FaultSpecError("job= and beats= are 1-based counts")
            rules.append(FaultRule(
                action=action, worker=fields["worker"],
                job=fields["job"], beats=fields["beats"],
            ))
        return cls(tuple(rules))

    def render(self) -> str:
        """Re-render the plan as a spec string (ships to workers)."""
        return "; ".join(rule.render() for rule in self.rules)

    def for_worker(self, index: int) -> "WorkerFaults":
        """Mutable countdown state for one worker's share of the plan."""
        return WorkerFaults(
            tuple(rule for rule in self.rules if rule.worker == index)
        )


class WorkerFaults:
    """One worker's armed fault counters (lives inside the worker).

    >>> faults = FaultPlan.parse("corrupt:worker=0:job=2").for_worker(0)
    >>> [faults.on_result() for _ in range(3)]
    ['', 'corrupt', '']
    >>> faults.skip_heartbeat()
    False
    """

    def __init__(self, rules: tuple[FaultRule, ...] = ()):
        self._kill_at = {r.job for r in rules if r.action == "kill"}
        self._corrupt_at = {r.job for r in rules if r.action == "corrupt"}
        self._stall_at = {r.job for r in rules if r.action == "stall"}
        self._skip_beats = sum(
            r.beats for r in rules if r.action == "delay_heartbeat"
        )
        self.results_sent = 0

    def on_result(self) -> str:
        """Account one result send; returns the armed action ("" = none)."""
        self.results_sent += 1
        if self.results_sent in self._kill_at:
            return "kill"
        if self.results_sent in self._corrupt_at:
            return "corrupt"
        if self.results_sent in self._stall_at:
            return "stall"
        return ""

    def skip_heartbeat(self) -> bool:
        """Whether the next heartbeat is suppressed (consumes one skip)."""
        if self._skip_beats > 0:
            self._skip_beats -= 1
            return True
        return False


def _corrupt_payload(payload: bytes) -> bytes:
    """Deterministically bit-flip a reply payload (CRC will catch it)."""
    if not payload:
        return payload
    flipped = bytearray(payload)
    flipped[len(flipped) // 2] ^= 0xFF
    return bytes(flipped)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def fleet_worker_main(conn, config: dict) -> None:
    """Entry point of one fleet worker (top-level: spawn-picklable).

    ``config`` is a plain picklable dict: ``index``, ``mode``, ``chips``,
    ``pool_engine``, ``strict_fidelity``, ``heartbeat_interval``, and
    ``fault_spec``. The worker builds its own session registry and chip
    pool, then loops: drain control messages, execute routed jobs,
    heartbeat on the interval.
    """
    _FleetWorker(conn, config).run()


class _FleetWorker:
    """The worker loop behind :func:`fleet_worker_main`."""

    def __init__(self, conn, config: dict):
        self.conn = conn
        self.index = config["index"]
        self.mode = config.get("mode", "process")
        self.interval = config.get("heartbeat_interval", 0.5)
        self.faults = FaultPlan.parse(
            config.get("fault_spec", "")
        ).for_worker(self.index)
        self.registry = SessionRegistry()
        self.backend = ChipPoolBackend(
            pool_size=config.get("chips", 1),
            strict_fidelity=config.get("strict_fidelity", False),
            engine=config.get("pool_engine", "exact"),
        )
        self._sessions: dict[str, object] = {}  # token -> local Session
        self._batch_seq = 0
        self._beat_seq = 0
        self._jobs_done = 0
        self._last_beat = 0.0

    def run(self) -> None:
        self._heartbeat(force=True)  # hello
        while True:
            try:
                ready = self.conn.poll(self.interval)
            except (EOFError, OSError):
                return
            if ready:
                try:
                    data = bytes(self.conn.recv_bytes())
                except (EOFError, OSError):
                    return  # orchestrator went away: shut down
                if not self._handle(data):
                    return
            self._heartbeat()

    # -- control messages ----------------------------------------------

    def _handle(self, data: bytes) -> bool:
        tag = peek_tag(data)
        if tag == TAG_WORKER_KEYS:
            self._install_keys(decode_worker_keys(data))
        elif tag == TAG_WORKER_FAULTS:
            spec = decode_worker_faults(data).spec
            self.faults = FaultPlan.parse(spec).for_worker(self.index)
        elif tag == TAG_WORKER_JOB:
            return self._serve_job(decode_worker_job(data))
        else:
            raise WireFormatError(f"unexpected worker-control tag {tag:#x}")
        return True

    def _install_keys(self, msg: WorkerKeysMsg) -> None:
        params = deserialize_params(msg.params)
        relin = (
            deserialize_relin_key(msg.relin_key, params)
            if msg.relin_key is not None else None
        )
        galois = tuple(
            deserialize_galois_key(g, params) for g in msg.galois_keys
        )
        self._sessions[msg.token] = self.registry.open_session(
            msg.tenant, params, relin=relin, galois=galois
        )

    # -- job execution -------------------------------------------------

    def _serve_job(self, msg: WorkerJobMsg) -> bool:
        reply = self._execute(msg)
        action = self.faults.on_result()
        if action == "kill":
            # Simulate a crash at the worst moment: the job ran but its
            # result never leaves the worker.
            if self.mode == "process":
                os._exit(1)
            try:
                self.conn.close()
            except OSError:
                pass
            return False
        if action == "stall":
            # The job executed but its reply never leaves: the worker
            # stays live (heartbeats continue, later jobs are served),
            # which is exactly the hang deadline reaping must cover.
            return True
        if action == "corrupt":
            reply = WorkerResultMsg(
                job_id=reply.job_id, status=reply.status,
                payload=_corrupt_payload(reply.payload), error=reply.error,
                cycles=reply.cycles, seconds=reply.seconds,
                fidelity=reply.fidelity,
            )
        try:
            self.conn.send_bytes(encode_worker_result(reply))
        except (EOFError, OSError, ValueError):
            return False
        self._jobs_done += 1
        return True

    def _execute(self, msg: WorkerJobMsg) -> WorkerResultMsg:
        try:
            session = self._sessions[msg.token]
        except KeyError:
            return WorkerResultMsg(
                job_id=msg.job_id, status="failed",
                error=f"worker {self.index} has no replicated session "
                      f"for token {msg.token!r}",
            )
        try:
            kind = JobKind(msg.kind)
            operands = [
                self.registry.ingest_ciphertext(session, blob)
                for blob in msg.operands
            ]
            circuit = (
                deserialize_circuit(msg.circuit)
                if msg.circuit is not None else None
            )
            job = Job(
                session_id=session.session_id, tenant=session.tenant,
                kind=kind, operands=operands, steps=msg.steps,
                payload=circuit, trace=NULL_TRACE,
            )
        except Exception as exc:  # malformed routed job: fail it cleanly
            return WorkerResultMsg(
                job_id=msg.job_id, status="failed", error=str(exc)
            )
        self._batch_seq += 1
        self.backend.execute_batch(self._batch_seq, [job], self.registry)
        if job.status is not JobStatus.DONE:
            return WorkerResultMsg(
                job_id=msg.job_id, status="failed",
                error=job.error or "worker execution failed",
            )
        if isinstance(job.result, Ciphertext):
            payload = serialize_ciphertext(job.result)
        else:
            payload = serialize_circuit_outputs(job.result)
        return WorkerResultMsg(
            job_id=msg.job_id, status="done", payload=payload,
            cycles=job.metrics.cycles, seconds=job.metrics.seconds,
            fidelity=job.metrics.fidelity,
        )

    # -- liveness ------------------------------------------------------

    def _heartbeat(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_beat < self.interval:
            return
        self._last_beat = now
        if self.faults.skip_heartbeat():
            return
        self._beat_seq += 1
        beat = WorkerHeartbeatMsg(
            worker=self.index, seq=self._beat_seq, jobs_done=self._jobs_done
        )
        try:
            self.conn.send_bytes(encode_worker_heartbeat(beat))
        except (EOFError, OSError, ValueError):
            pass


# ----------------------------------------------------------------------
# Orchestrator side
# ----------------------------------------------------------------------


@dataclass
class _Assignment:
    """One job's routed placement (survives requeues intact)."""

    job: Job
    batch_id: int
    digest: bytes
    message: bytes  # pre-encoded WORKER_JOB frame, reused on requeue
    attempts: int = 0
    sent_at: float = 0.0
    last_worker: int = -1  # requeues avoid the worker that just failed


@dataclass
class _FleetBatch:
    """Accounting for one dispatched batch until every job settles."""

    batch_id: int
    jobs: list[Job]
    digest: bytes
    start: float
    remaining: set[str] = field(default_factory=set)
    cycles: int = 0
    workers: set[int] = field(default_factory=set)
    worker_cycles: dict[int, int] = field(default_factory=dict)
    fidelity: dict[str, int] = field(default_factory=dict)


@dataclass
class WorkerHandle:
    """Orchestrator-side view of one worker slot."""

    index: int
    conn: object
    proc: object  # multiprocessing.Process or threading.Thread
    mode: str
    live: bool = True  # admitted (heartbeat current)
    attached: bool = True  # pipe usable
    last_seen: float = 0.0
    heartbeats: int = 0
    jobs_done: int = 0
    assigned: dict[str, _Assignment] = field(default_factory=dict)
    backlog: deque = field(default_factory=deque)
    replicated: dict[str, tuple] = field(default_factory=dict)


def _ensure_child_import_path() -> None:
    """Make ``repro`` importable in spawn children via PYTHONPATH.

    Spawned interpreters re-import this module from scratch; when the
    parent found ``repro`` through pytest's ``pythonpath`` ini (not the
    environment), the child would not.
    """
    src = str(Path(__file__).resolve().parents[2])
    existing = os.environ.get("PYTHONPATH", "")
    parts = existing.split(os.pathsep) if existing else []
    if src not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([src, *parts])


class FleetBackend(Backend):
    """A fleet of worker processes behind the async backend interface.

    ``size`` workers, each owning ``chips`` simulated CoFHEE chips.
    ``mode="process"`` spawns real interpreters (the deployment shape;
    always the ``spawn`` start method, so macOS and Linux behave the
    same); ``mode="thread"`` runs the identical worker loop in threads
    for fast deterministic tests. ``fault_spec`` (default: the
    ``REPRO_FAULT`` environment variable) arms the deterministic
    :class:`FaultPlan` inside every worker.

    Per-worker sends are windowed (``worker_window`` unacknowledged jobs
    per worker, default 1) so a paper-scale batch never wedges both pipe
    directions; overflow queues in the orchestrator and drains as
    results return.

    ``spill_threshold`` (``0``, the default, keeps pure digest pinning)
    enables spill-over routing: a job routes to its digest's home worker
    only while the home's in-flight depth (assigned + backlog) is below
    the threshold, then spills to the next live worker — preferring one
    that already holds the session's replicated keys — so one hot tenant
    stops pinning the whole fleet's work to a single worker.
    """

    supports_async = True

    def __init__(self, size: int = 2, *, mode: str = "process",
                 chips: int = 1, pool_engine: str = "exact",
                 strict_fidelity: bool = False,
                 heartbeat_interval: float = 0.5,
                 heartbeat_timeout: float = 10.0,
                 max_attempts: int = 4, worker_window: int = 1,
                 restart: bool = True, fault_spec: str | None = None,
                 spill_threshold: int = 0):
        super().__init__()
        if size < 1:
            raise ValueError("fleet needs at least one worker")
        if mode not in ("process", "thread"):
            raise ValueError(f"mode must be 'process' or 'thread', got {mode!r}")
        if worker_window < 1:
            raise ValueError("worker_window must be >= 1")
        if spill_threshold < 0:
            raise ValueError("spill_threshold must be >= 0 (0 disables)")
        self.name = f"fleet_x{size}"
        self.size = size
        self.mode = mode
        self.chips = chips
        self.pool_engine = pool_engine
        self.strict_fidelity = strict_fidelity
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_attempts = max_attempts
        self.worker_window = worker_window
        self.restart = restart
        self.spill_threshold = spill_threshold
        if fault_spec is None:
            fault_spec = os.environ.get("REPRO_FAULT", "")
        self.fault_plan = FaultPlan.parse(fault_spec)
        self._fault_spec = self.fault_plan.render()
        self._registry: SessionRegistry | None = None
        self._batches: dict[int, _FleetBatch] = {}
        self._owner: dict[str, int] = {}  # job_id -> worker index
        self._completed: list[tuple[BatchReport, list[Job]]] = []
        self._key_wire: dict[str, tuple[tuple, bytes]] = {}
        self._elapsed = 0.0
        self._busy_since: float | None = None
        self._closing = False
        self.requeues = 0
        self.evictions = 0
        self.readmissions = 0
        self.deaths = 0
        self.respawns = 0
        self.stale_results = 0
        self.corrupt_replies = 0
        self.route_home = 0
        self.route_spill = 0
        self.deadline_reaps = 0
        self.resize_grows = 0
        self.resize_shrinks = 0
        #: Cumulative modeled cycles per worker index, across batches.
        #: The fleet's makespan view: with routing spreading digests,
        #: ``makespan_cycles`` (the busiest worker) drops while
        #: ``total_cycles`` (the work) stays put.
        self.worker_cycles: dict[int, int] = {}
        if mode == "process":
            _ensure_child_import_path()
        self._workers = [self._spawn(i) for i in range(size)]

    # -- worker lifecycle ----------------------------------------------

    def _spawn(self, index: int, fault_spec: str | None = None) -> WorkerHandle:
        config = {
            "index": index,
            "mode": self.mode,
            "chips": self.chips,
            "pool_engine": self.pool_engine,
            "strict_fidelity": self.strict_fidelity,
            "heartbeat_interval": self.heartbeat_interval,
            "fault_spec": (
                self._fault_spec if fault_spec is None else fault_spec
            ),
        }
        if self.mode == "process":
            ctx = multiprocessing.get_context("spawn")
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=fleet_worker_main, args=(child, config),
                name=f"repro-fleet-{index}", daemon=True,
            )
            proc.start()
            child.close()  # our copy; the worker holds the live end
        else:
            parent, child = multiprocessing.Pipe()
            proc = threading.Thread(
                target=fleet_worker_main, args=(child, config),
                name=f"repro-fleet-{index}", daemon=True,
            )
            proc.start()
        handle = WorkerHandle(
            index=index, conn=parent, proc=proc, mode=self.mode,
            last_seen=time.monotonic(),
        )
        return handle

    def close(self) -> None:
        """Shut the fleet down; idempotent. Pending jobs fail cleanly."""
        if self._closing:
            return
        self._closing = True
        for handle in self._workers:
            for assignment in (
                list(handle.assigned.values()) + list(handle.backlog)
            ):
                self._fail_assignment(assignment, "fleet shut down")
            handle.assigned.clear()
            handle.backlog.clear()
            handle.live = False
            handle.attached = False
            try:
                handle.conn.close()  # workers exit on EOF
            except OSError:
                pass
        for handle in self._workers:
            proc = handle.proc
            if proc is None:
                continue
            proc.join(timeout=2.0)
            if hasattr(proc, "terminate") and proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._set_gauges()

    # -- async backend interface ---------------------------------------

    def dispatch_batch(
        self, batch_id: int, jobs: list[Job], registry: SessionRegistry
    ) -> None:
        """Route a formed batch to the fleet without blocking."""
        self._registry = registry
        now = time.perf_counter()
        if self._busy_since is None:
            self._busy_since = now
        session = registry.get(jobs[0].session_id)
        batch = _FleetBatch(
            batch_id=batch_id, jobs=list(jobs), digest=session.digest,
            start=now, remaining={job.job_id for job in jobs},
        )
        self._batches[batch_id] = batch
        self._pump(0.0)  # freshen liveness before routing
        self._check_health()
        for job in jobs:
            assignment = self._encode_assignment(job, batch)
            if assignment is not None:
                self._place(assignment)
        self._set_gauges()

    def poll(self, timeout: float = 0.0) -> list[tuple[BatchReport, list[Job]]]:
        """Collect finished batches; processes heartbeats and faults."""
        self._pump(timeout)
        self._check_health()
        done, self._completed = self._completed, []
        self._set_gauges()
        return done

    @property
    def in_flight(self) -> int:
        return sum(len(batch.remaining) for batch in self._batches.values())

    def wall_seconds(self) -> float:
        busy = self._elapsed
        if self._busy_since is not None:
            busy += time.perf_counter() - self._busy_since
        return busy

    def execute_batch(self, batch_id, jobs, registry) -> BatchReport:
        raise NotImplementedError(
            "the fleet dispatches asynchronously; use dispatch_batch/poll"
        )

    # -- routing and placement -----------------------------------------

    def _encode_assignment(
        self, job: Job, batch: _FleetBatch
    ) -> _Assignment | None:
        if job.kind.is_app:
            failed = _Assignment(
                job=job, batch_id=batch.batch_id, digest=batch.digest,
                message=b"",
            )
            self._fail_assignment(
                failed,
                f"{job.kind.value} jobs are in-process only; "
                "submit them to chip_pool or software",
            )
            return None
        if len(job.wire_operands) == len(job.operands):
            operands = tuple(job.wire_operands)
        else:
            operands = tuple(
                serialize_ciphertext(ct) for ct in job.operands
            )
        circuit = (
            serialize_circuit(job.payload)
            if job.kind is JobKind.CIRCUIT else None
        )
        message = encode_worker_job(WorkerJobMsg(
            job_id=job.job_id, token=job.session_id, kind=job.kind.value,
            steps=job.steps, operands=operands, circuit=circuit,
        ))
        return _Assignment(
            job=job, batch_id=batch.batch_id, digest=batch.digest,
            message=message,
        )

    def _pick_worker(self, digest: bytes, exclude: int = -1,
                     session_id: str = "") -> WorkerHandle | None:
        """Route by digest, preferring any live worker over ``exclude``.

        ``exclude`` is the index a requeued job just failed on; with two
        or more live workers the replacement placement lands elsewhere,
        which breaks kill-fault livelock (a faulty slot would otherwise
        keep eating the same job until the attempt cap).

        With ``spill_threshold > 0`` the home worker is used only while
        its in-flight depth is below the threshold; past it the job
        spills forward to a live worker with spare depth, preferring one
        that already replicated the session's keys (lazy replication
        makes a cold spill a one-time key shipment, not a per-job cost).
        A fleet that is saturated everywhere falls back to plain digest
        order, so spill mode never strands a job.
        """
        start = route_index(digest, self.size)
        if self.spill_threshold > 0:
            home = self._workers[start]
            if (home.live and home.attached and home.index != exclude
                    and len(home.assigned) + len(home.backlog)
                    < self.spill_threshold):
                self.route_home += 1
                return home
            spill = None
            for offset in range(1, self.size):
                handle = self._workers[(start + offset) % self.size]
                if not (handle.live and handle.attached):
                    continue
                if handle.index == exclude:
                    continue
                if (len(handle.assigned) + len(handle.backlog)
                        >= self.spill_threshold):
                    continue
                if session_id and session_id in handle.replicated:
                    spill = handle
                    break
                if spill is None:
                    spill = handle
            if spill is not None:
                self.route_spill += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "repro_fleet_spillovers_total",
                        "Jobs routed off their digest's home worker",
                    ).inc()
                return spill
            # Saturated (or one-worker) fleet: plain digest order below.
        fallback = None
        for offset in range(self.size):
            handle = self._workers[(start + offset) % self.size]
            if not (handle.live and handle.attached):
                continue
            if handle.index != exclude:
                if self.spill_threshold > 0:
                    self.route_home += 1
                return handle
            fallback = handle
        return fallback

    def _place(self, assignment: _Assignment) -> None:
        assignment.attempts += 1
        if assignment.attempts > self.max_attempts:
            self._fail_assignment(
                assignment,
                f"job requeued past the attempt cap "
                f"({self.max_attempts} placements)",
            )
            return
        handle = self._pick_worker(
            assignment.digest, exclude=assignment.last_worker,
            session_id=assignment.job.session_id)
        if handle is None:
            self._fail_assignment(assignment, "no live fleet workers")
            return
        handle.backlog.append(assignment)
        self._kick(handle)

    def _kick(self, handle: WorkerHandle) -> None:
        """Drain a worker's backlog up to its in-flight window."""
        while (handle.attached and handle.live and handle.backlog
               and len(handle.assigned) < self.worker_window):
            assignment = handle.backlog.popleft()
            try:
                self._replicate(handle, assignment.job)
                handle.conn.send_bytes(assignment.message)
            except (EOFError, OSError, ValueError):
                # Leave it with the dead worker's orphans: _on_death
                # requeues everything onto the survivors exactly once.
                handle.backlog.appendleft(assignment)
                self._on_death(handle, "worker pipe broke")
                return
            assignment.sent_at = time.perf_counter()
            assignment.last_worker = handle.index
            handle.assigned[assignment.job.job_id] = assignment
            self._owner[assignment.job.job_id] = handle.index

    def _replicate(self, handle: WorkerHandle, job: Job) -> None:
        """Ship a session's params + evaluation keys on first use."""
        registry = self._registry
        session = registry.get(job.session_id)
        fingerprint = (
            id(session.relin), tuple(sorted(session.galois)),
        )
        if handle.replicated.get(session.session_id) == fingerprint:
            return
        cached = self._key_wire.get(session.session_id)
        if cached is None or cached[0] != fingerprint:
            relin = (
                serialize_relin_key(session.relin, session.params)
                if session.relin is not None else None
            )
            galois = tuple(
                serialize_galois_key(key, session.params)
                for _, key in sorted(session.galois.items())
            )
            message = encode_worker_keys(WorkerKeysMsg(
                token=session.session_id, tenant=session.tenant,
                params=serialize_params(session.params),
                relin_key=relin, galois_keys=galois,
            ))
            self._key_wire[session.session_id] = (fingerprint, message)
        else:
            message = cached[1]
        handle.conn.send_bytes(message)
        handle.replicated[session.session_id] = fingerprint
        if self.metrics is not None:
            self.metrics.counter(
                "repro_fleet_key_replications_total",
                "Evaluation-key replications to fleet workers",
            ).inc()

    # -- pipe pump and liveness ----------------------------------------

    def _pump(self, timeout: float) -> None:
        handles = {
            handle.conn: handle
            for handle in self._workers if handle.attached
        }
        if not handles:
            if timeout > 0:
                time.sleep(timeout)
            return
        try:
            ready = mp_connection.wait(list(handles), timeout)
        except OSError:
            ready = []
        for conn in ready:
            handle = handles[conn]
            while handle.attached:
                try:
                    if not conn.poll(0):
                        break
                    data = bytes(conn.recv_bytes())
                except (EOFError, OSError):
                    self._on_death(handle, "worker connection closed")
                    break
                self._on_message(handle, data)

    def _on_message(self, handle: WorkerHandle, data: bytes) -> None:
        handle.last_seen = time.monotonic()
        if not handle.live:
            # An evicted worker that speaks again is re-admitted.
            handle.live = True
            self.readmissions += 1
            self._kick(handle)
        tag = peek_tag(data)
        if tag == TAG_WORKER_HEARTBEAT:
            beat = decode_worker_heartbeat(data)
            handle.heartbeats += 1
            handle.jobs_done = max(handle.jobs_done, beat.jobs_done)
        elif tag == TAG_WORKER_RESULT:
            self._on_result(handle, decode_worker_result(data))
        else:
            raise WireFormatError(f"unexpected worker reply tag {tag:#x}")

    def _check_health(self) -> None:
        now = time.monotonic()
        self._reap_expired(now)
        for handle in list(self._workers):
            if not handle.attached:
                continue
            if handle.proc is not None and not handle.proc.is_alive():
                # Drain any result the worker sent before dying.
                self._drain_remnants(handle)
                if handle.attached:
                    self._on_death(handle, "worker died")
                continue
            if handle.live and now - handle.last_seen > self.heartbeat_timeout:
                self._evict(handle)

    def _reap_expired(self, now: float) -> None:
        """Fail in-flight and backlogged jobs past their deadline.

        Reaping pops the job from the ownership map, so a reply that
        eventually arrives from a stalled worker is discarded as stale —
        the job settles exactly once, with the typed deadline failure,
        and is never requeued.
        """
        for handle in self._workers:
            expired = [
                a for a in handle.assigned.values()
                if a.job.deadline is not None and a.job.deadline <= now
            ]
            for assignment in expired:
                del handle.assigned[assignment.job.job_id]
                self._reap_one(assignment, "deadline expired in flight")
            if handle.backlog and any(
                a.job.deadline is not None and a.job.deadline <= now
                for a in handle.backlog
            ):
                keep: deque = deque()
                for assignment in handle.backlog:
                    if (assignment.job.deadline is not None
                            and assignment.job.deadline <= now):
                        self._reap_one(
                            assignment, "deadline expired before execution"
                        )
                    else:
                        keep.append(assignment)
                handle.backlog = keep
            if expired:
                self._kick(handle)

    def _reap_one(self, assignment: _Assignment, message: str) -> None:
        self.deadline_reaps += 1
        if self.metrics is not None:
            self.metrics.counter(
                "repro_deadline_shed_total",
                "jobs failed past their deadline",
                stage="in_flight", tenant=assignment.job.tenant,
            ).inc()
        self._fail_assignment(assignment, message)

    def _drain_remnants(self, handle: WorkerHandle) -> None:
        while handle.attached:
            try:
                if not handle.conn.poll(0):
                    return
                data = bytes(handle.conn.recv_bytes())
            except (EOFError, OSError):
                self._on_death(handle, "worker died")
                return
            self._on_message(handle, data)

    def _evict(self, handle: WorkerHandle) -> None:
        """Heartbeat went quiet: stop routing, requeue its jobs."""
        handle.live = False
        self.evictions += 1
        orphans = list(handle.assigned.values()) + list(handle.backlog)
        handle.assigned.clear()
        handle.backlog.clear()
        for assignment in orphans:
            self._requeue(assignment, "worker evicted on heartbeat timeout")

    def _on_death(self, handle: WorkerHandle, reason: str) -> None:
        """EOF or dead process: replace the worker, requeue its jobs."""
        if not handle.attached:
            return
        handle.attached = False
        handle.live = False
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.proc is not None:
            handle.proc.join(timeout=0.5)
        orphans = list(handle.assigned.values()) + list(handle.backlog)
        handle.assigned.clear()
        handle.backlog.clear()
        self.deaths += 1
        if self.restart and not self._closing:
            # The replacement starts with a clean fault plan: an armed
            # kill must not loop the slot through death forever.
            self._workers[handle.index] = self._spawn(handle.index, "")
            self.respawns += 1
        for assignment in orphans:
            self._requeue(assignment, reason)

    # -- elastic resize -------------------------------------------------

    def grow(self, count: int = 1) -> int:
        """Admit ``count`` fresh workers; returns the new fleet size.

        New workers append at the end of the index range and inherit the
        fleet's fault spec, so plan rules targeting future indices arm
        the moment their worker exists. Routing immediately includes the
        new indices (``route_index`` is ``digest % size``); in-flight
        work is untouched — the ownership map is keyed by job id, not by
        the routing function.
        """
        if count < 1:
            raise ValueError("grow() wants a positive worker count")
        if self._closing:
            raise RuntimeError("cannot grow a fleet that is shut down")
        for _ in range(count):
            self._workers.append(self._spawn(len(self._workers)))
            self.size += 1
            self.resize_grows += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_fleet_resize_events_total",
                    "Fleet resize operations", direction="grow",
                ).inc()
        self._set_gauges()
        return self.size

    def shrink(self, count: int = 1) -> int:
        """Retire the ``count`` highest-indexed workers; returns the size.

        Reuses the death machinery minus the respawn: the retired
        worker's pipe closes (it exits on EOF), and its in-flight and
        backlogged jobs requeue onto the survivors — the size shrinks
        *before* the requeue so replacement placements route within the
        remaining index range. At least one worker always remains.
        """
        if count < 1:
            raise ValueError("shrink() wants a positive worker count")
        if count >= self.size:
            raise ValueError(
                f"cannot shrink a fleet of {self.size} by {count}; "
                "at least one worker must remain"
            )
        for _ in range(count):
            handle = self._workers.pop()
            self.size -= 1
            self.resize_shrinks += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_fleet_resize_events_total",
                    "Fleet resize operations", direction="shrink",
                ).inc()
                self.metrics.gauge(
                    "repro_fleet_worker_inflight",
                    "Jobs assigned or backlogged per fleet worker",
                    worker=str(handle.index),
                ).set(0)
            orphans = list(handle.assigned.values()) + list(handle.backlog)
            handle.assigned.clear()
            handle.backlog.clear()
            handle.live = False
            handle.attached = False
            try:
                handle.conn.close()  # the worker exits on EOF
            except OSError:
                pass
            if handle.proc is not None:
                handle.proc.join(timeout=2.0)
                if hasattr(handle.proc, "terminate") and handle.proc.is_alive():
                    handle.proc.terminate()
                    handle.proc.join(timeout=1.0)
            for assignment in orphans:
                self._requeue(assignment, "worker retired by shrink")
        self._set_gauges()
        return self.size

    def resize(self, target: int) -> int:
        """Grow or shrink to exactly ``target`` workers; returns the size."""
        if target < 1:
            raise ValueError("fleet size must be >= 1")
        if target > self.size:
            return self.grow(target - self.size)
        if target < self.size:
            return self.shrink(self.size - target)
        return self.size

    def _requeue(self, assignment: _Assignment, reason: str) -> None:
        self.requeues += 1
        self._owner.pop(assignment.job.job_id, None)
        if self.metrics is not None:
            self.metrics.counter(
                "repro_fleet_requeues_total",
                "Fleet jobs requeued after a worker fault",
            ).inc()
        self._place(assignment)

    # -- results and settlement ----------------------------------------

    def _on_result(self, handle: WorkerHandle, msg: WorkerResultMsg) -> None:
        assignment = handle.assigned.pop(msg.job_id, None)
        if assignment is None or self._owner.get(msg.job_id) != handle.index:
            # A worker we already gave up on raced a requeue; its late
            # result must not settle the job a second time.
            self.stale_results += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_fleet_stale_results_total",
                    "Late duplicate results discarded after a requeue",
                ).inc()
            self._kick(handle)
            return
        del self._owner[msg.job_id]
        job = assignment.job
        batch = self._batches[assignment.batch_id]
        now = time.perf_counter()
        if msg.status == "done":
            try:
                verify_frame(msg.payload)
            except WireFormatError:
                self.corrupt_replies += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "repro_fleet_corrupt_replies_total",
                        "Worker replies failing the CRC integrity check",
                    ).inc()
                self._kick(handle)
                self._place(assignment)  # run it again elsewhere
                return
            if job.trace.enabled and assignment.sent_at:
                job.trace.mark("execute", assignment.sent_at, now)
            job.finish(msg.payload)  # framed wire bytes, decoded client-side
            job.metrics.cycles = msg.cycles
            job.metrics.seconds = msg.seconds
            job.metrics.fidelity = msg.fidelity
            if msg.fidelity:
                batch.fidelity[msg.fidelity] = (
                    batch.fidelity.get(msg.fidelity, 0) + 1
                )
            self.jobs_done += 1
            handle.jobs_done += 1
        else:
            job.fail(msg.error or "fleet worker failed the job")
        job.metrics.backend = self.name
        job.metrics.worker = handle.index
        job.metrics.batch_id = assignment.batch_id
        batch.cycles += msg.cycles
        batch.workers.add(handle.index)
        batch.worker_cycles[handle.index] = (
            batch.worker_cycles.get(handle.index, 0) + msg.cycles
        )
        self.worker_cycles[handle.index] = (
            self.worker_cycles.get(handle.index, 0) + msg.cycles
        )
        if self.metrics is not None and msg.cycles:
            self.metrics.counter(
                "repro_fleet_worker_cycles_total",
                "Modeled cycles executed per fleet worker",
                worker=str(handle.index),
            ).inc(msg.cycles)
        self._settle(batch, job.job_id)
        self._kick(handle)

    def _fail_assignment(self, assignment: _Assignment, message: str) -> None:
        job = assignment.job
        self._owner.pop(job.job_id, None)
        job.fail(message)
        job.metrics.backend = self.name
        job.metrics.batch_id = assignment.batch_id
        batch = self._batches.get(assignment.batch_id)
        if batch is not None:
            self._settle(batch, job.job_id)

    def _settle(self, batch: _FleetBatch, job_id: str) -> None:
        batch.remaining.discard(job_id)
        if batch.remaining:
            return
        now = time.perf_counter()
        report = BatchReport(
            batch_id=batch.batch_id, backend=self.name,
            worker=min(batch.workers, default=-1),
            jobs=len(batch.jobs), cycles=batch.cycles,
            seconds=now - batch.start,
            workers=tuple(sorted(batch.workers)),
            makespan_cycles=max(batch.worker_cycles.values(), default=0),
            fidelity=dict(batch.fidelity),
        )
        del self._batches[batch.batch_id]
        self._completed.append((report, batch.jobs))
        if not self._batches and self._busy_since is not None:
            self._elapsed += now - self._busy_since
            self._busy_since = None

    # -- reporting ------------------------------------------------------

    def _set_gauges(self) -> None:
        if self.metrics is None:
            return
        live = sum(1 for h in self._workers if h.live and h.attached)
        self.metrics.gauge(
            "repro_fleet_workers_live", "Fleet workers currently admitted"
        ).set(live)
        self.metrics.gauge(
            "repro_fleet_in_flight", "Fleet jobs dispatched but unsettled"
        ).set(self.in_flight)
        for handle in self._workers:
            self.metrics.gauge(
                "repro_fleet_worker_inflight",
                "Jobs assigned or backlogged per fleet worker",
                worker=str(handle.index),
            ).set(len(handle.assigned) + len(handle.backlog))

    @property
    def total_cycles(self) -> int:
        """Modeled cycles executed fleet-wide (the work)."""
        return sum(self.worker_cycles.values())

    @property
    def makespan_cycles(self) -> int:
        """Modeled cycles on the busiest worker (the wall time).

        Workers execute concurrently — separate interpreters — so the
        fleet's modeled wall time is the busiest worker's share, not
        the sum. Spreading parameter digests across a bigger fleet
        shrinks this while :attr:`total_cycles` stays put.
        """
        return max(self.worker_cycles.values(), default=0)

    def fleet_report(self) -> dict:
        """Structured fleet state for tests, stats, and operators."""
        return {
            "size": self.size,
            "mode": self.mode,
            "workers": [
                {
                    "index": h.index,
                    "live": h.live and h.attached,
                    "heartbeats": h.heartbeats,
                    "jobs_done": h.jobs_done,
                    "assigned": len(h.assigned),
                    "backlog": len(h.backlog),
                }
                for h in self._workers
            ],
            "in_flight": self.in_flight,
            "total_cycles": self.total_cycles,
            "makespan_cycles": self.makespan_cycles,
            "requeues": self.requeues,
            "evictions": self.evictions,
            "readmissions": self.readmissions,
            "deaths": self.deaths,
            "respawns": self.respawns,
            "stale_results": self.stale_results,
            "corrupt_replies": self.corrupt_replies,
            "deadline_reaps": self.deadline_reaps,
            "routing": {
                "spill_threshold": self.spill_threshold,
                "home": self.route_home,
                "spill": self.route_spill,
            },
            "resizes": {
                "grow": self.resize_grows,
                "shrink": self.resize_shrinks,
            },
        }
