"""Pluggable compute backends behind the serving layer.

One workload, three ways to run it (the TF-Encrypted "pluggable protocol"
idea mapped onto CoFHEE's evaluation platforms):

* :class:`ChipPoolBackend` — a pool of N simulated CoFHEE chips. Results
  are computed exactly (host-side scheme arithmetic, as the paper's host
  does the ``t/q`` rounding); cycle/IO accounting comes from the
  cycle-calibrated model, and — where the session's modulus fits a single
  native tower — the Algorithm 3 command stream is actually executed on
  the worker's :class:`~repro.core.driver.CofheeDriver`, with the chip's
  mod-q tensor cross-checked against the software reference.
* :class:`SoftwareBackend` — the SEAL-style CPU baseline: same exact
  results, priced by :class:`~repro.baselines.software.CpuCostModel`.
* :class:`FastNttBackend` — the vectorized numpy path: the evaluation
  engine's exact multiplier is swapped for
  :class:`~repro.polymath.fastntt.RnsExactMultiplier` and the reported
  latency is *measured* wall time, where moduli permit (enough sub-31-bit
  NTT-friendly primes for the degree — true for every supported set).

All three produce bit-identical ciphertexts, so a tenant can ask for
correctness (chip fidelity) or speed (numpy) per request and decrypt the
same answer.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.apps.costmodel import CofheeAppCost, CpuAppCost, Workload
from repro.apps.cryptonets import MiniCryptoNets
from repro.apps.logreg import MiniLogisticRegression
from repro.baselines.software import CpuCostModel, SoftwareBfv
from repro.bfv.params import BfvParameters
from repro.bfv.rotation import apply_galois_with_key
from repro.bfv.scheme import Bfv, Ciphertext
from repro.core.chip import ChipConfig, CoFHEE
from repro.core.driver import CofheeDriver
from repro.core.scheduler import Scheduler, ciphertext_multiply_program
from repro.polymath.primes import ntt_friendly_prime
from repro.polymath.rns import RnsBasis
from repro.service.circuits import (
    Circuit,
    OP_ADD,
    OP_ADD_CONST,
    OP_MAC_CONST,
    OP_MUL_CONST,
    OP_ROTATE_ROWS,
    OP_SPECS,
    OP_SUB,
    ROTATION_OPS,
    TENSOR_OPS,
    evaluate_circuit,
    rotation_exponent,
)
from repro.service.jobs import Job, JobKind
from repro.service.registry import Session, SessionRegistry
from repro.service.towers import (
    KeySwitchWorkItem,
    TowerGather,
    plan_keyswitch_dispatch,
    plan_tower_dispatch,
    tower_items_for,
)


class BackendError(RuntimeError):
    """A backend could not execute a job."""


@dataclass
class BatchReport:
    """What one dispatched batch cost.

    ``worker`` is the lead worker (model-path jobs and relinearization
    tails run there); ``workers`` lists every worker the batch touched —
    under tower sharding one batch fans out across the pool. ``cycles``
    is the total work added across all workers, ``makespan_cycles`` the
    largest single-worker share (what pool scaling shrinks), and
    ``tower_cycles`` the per-tower totals (index-aligned with the batch's
    CoFHEE basis) summed over the batch's chip-executed jobs.

    ``fidelity`` counts jobs per execution path: ``"chip"`` jobs ran every
    tower of their Eq. 4 tensor through a worker driver with a mod-q
    cross-check; ``"model"`` jobs were priced from the compiled DAG or the
    app cost model; ``"relin_engine"`` counts jobs whose relinearization
    tail executed as chip-side key-switch work units through the batched
    engine fold; ``"relin_model"`` remains for params the engine cannot
    carry (wide digits or an engine-incapable basis), where the tail is
    still model-priced only.

    Cross-batch pipelining accounting: ``overlap_cycles`` is how many of
    this batch's level-0 tower cycles started inside the previous batch's
    gather window (per-worker idle headroom below the pool barrier), and
    ``pipelined_makespan_cycles`` the batch's wall-clock extent beyond
    that barrier — at most ``makespan_cycles``, which stays the
    un-pipelined per-batch share.
    """

    batch_id: int
    backend: str
    worker: int
    jobs: int
    cycles: int
    seconds: float
    io_seconds: float = 0.0
    workers: tuple[int, ...] = ()
    makespan_cycles: int = 0
    tower_cycles: tuple[int, ...] = ()
    fidelity: dict[str, int] = field(default_factory=dict)
    overlap_cycles: int = 0
    pipelined_makespan_cycles: int = 0
    #: List-scheduling simulation: how far the simulated per-worker
    #: clocks advanced beyond the pool barrier under true producer-edge
    #: ready times. ≤ ``makespan_cycles`` when dependency slack lets
    #: consumers start before unrelated chains finish.
    schedule_makespan_cycles: int = 0


def default_app_params(kind: JobKind) -> BfvParameters:
    """The canonical toy parameter set each mini application defaults to.

    Kept in sync with the app constructors so an app session's digest
    matches the model the worker instantiates.
    """
    if kind is JobKind.LOGREG:
        return BfvParameters.toy(n=16, log_q=140, t=ntt_friendly_prime(16, 21))
    if kind is JobKind.CRYPTONETS:
        return BfvParameters.toy(n=16, log_q=120, t=ntt_friendly_prime(16, 20))
    raise ValueError(f"{kind.value} is not an application job kind")


# ----------------------------------------------------------------------
# Shared functional execution (all backends produce identical results)
# ----------------------------------------------------------------------


def _galois_exponent(session: Session, steps: int) -> int:
    half = session.params.n // 2
    steps %= half
    if steps == 0:
        raise BackendError("rotation by 0 steps is a no-op; do not submit it")
    return pow(3, steps, 2 * session.params.n)


def execute_functional(engine: Bfv, session: Session, job: Job) -> Ciphertext:
    """Run a raw-op job's homomorphic arithmetic exactly."""
    ops = job.operands
    if job.kind is JobKind.ADD:
        return engine.add(ops[0], ops[1])
    if job.kind is JobKind.SUB:
        return engine.sub(ops[0], ops[1])
    if job.kind is JobKind.MULTIPLY:
        tensor = engine.multiply(ops[0], ops[1])
        if session.relin is not None:
            return engine.relinearize(tensor, session.relin)
        return tensor
    if job.kind is JobKind.SQUARE:
        return engine.relinearize(engine.square(ops[0]), session.require_relin())
    if job.kind is JobKind.RELINEARIZE:
        return engine.relinearize(ops[0], session.require_relin())
    if job.kind is JobKind.ROTATE:
        key = session.require_galois(_galois_exponent(session, job.steps))
        return apply_galois_with_key(engine, ops[0], key)
    raise BackendError(f"unsupported raw-op kind {job.kind.value}")


class _AppRunner:
    """Caches mini-application models per (tenant, config) and runs jobs.

    Every run is verified against the app's own plaintext reference before
    the result is returned — the serving layer never hands back an
    unchecked app answer.
    """

    def __init__(self):
        self._models: dict[tuple, object] = {}

    def run(self, job: Job) -> tuple[object, Workload]:
        payload = job.payload
        if not isinstance(payload, dict):
            raise BackendError(f"{job.kind.value} payload must be a dict")
        if job.kind is JobKind.LOGREG:
            return self._run_logreg(job, payload)
        return self._run_cryptonets(job, payload)

    def _model(self, key: tuple, build) -> object:
        if key not in self._models:
            self._models[key] = build()
        return self._models[key]

    def _run_logreg(self, job: Job, payload: dict) -> tuple[object, Workload]:
        samples = payload["samples"]
        seed = payload.get("seed", 11)
        model: MiniLogisticRegression = self._model(
            (job.tenant, job.kind, len(samples[0]), seed),
            lambda: MiniLogisticRegression(num_features=len(samples[0]), seed=seed),
        )
        before = dict(model.op_log)
        predictions = model.predict(samples)
        if predictions != model.predict_plain(samples):
            raise BackendError("logreg encrypted path diverged from plaintext")
        workload = _op_delta_workload(
            "LogisticRegression", before, model.op_log, relin_digit_bits=16
        )
        return {"predictions": predictions, "verified": True}, workload

    def _run_cryptonets(self, job: Job, payload: dict) -> tuple[object, Workload]:
        images = payload["images"]
        seed = payload.get("seed", 7)
        model: MiniCryptoNets = self._model(
            (job.tenant, job.kind, seed), lambda: MiniCryptoNets(seed=seed)
        )
        before = dict(model.op_log)
        scores = model.infer(images)
        if scores != model.infer_plain(images):
            raise BackendError("cryptonets encrypted path diverged from plaintext")
        workload = _op_delta_workload(
            "CryptoNets", before, model.op_log, relin_digit_bits=8
        )
        result = {
            "scores": scores,
            "classes": model.classify(scores),
            "verified": True,
        }
        return result, workload


def _op_delta_workload(
    name: str, before: dict, after: dict, relin_digit_bits: int
) -> Workload:
    """Turn an op-log delta into a priceable Workload."""
    return Workload(
        name=name,
        ct_ct_adds=after["ct_ct_adds"] - before["ct_ct_adds"],
        ct_pt_mults=after["ct_pt_mults"] - before["ct_pt_mults"],
        ct_ct_mults=after["ct_ct_mults"] - before["ct_ct_mults"],
        relin_digit_bits=relin_digit_bits,
        paper_cpu_seconds=0.0,
        paper_cofhee_seconds=0.0,
    )


# ----------------------------------------------------------------------
# Backend base
# ----------------------------------------------------------------------


class Backend:
    """Shared functional execution and accounting for every backend.

    Subclasses implement :meth:`execute_batch` (how a formed batch runs
    and is priced) and :meth:`wall_seconds`; the base class provides the
    exact per-job arithmetic every backend shares — raw ops through
    :func:`execute_functional`, circuits through
    :func:`~repro.service.circuits.evaluate_circuit`, legacy app
    payloads through the plaintext-verified :class:`_AppRunner` — which
    is why all backends return bit-identical ciphertexts.
    """

    name = "abstract"

    #: Asynchronous backends (the worker fleet) dispatch batches to
    #: external workers and report completions later through
    #: :meth:`poll`; the scheduler keeps forming batches while they are
    #: in flight instead of blocking in :meth:`execute_batch`.
    supports_async = False

    def __init__(self):
        self._apps = _AppRunner()
        self.jobs_done = 0
        #: Metrics sink (set by :class:`~repro.service.server.FheServer`;
        #: ``None`` leaves a standalone backend un-instrumented).
        self.metrics = None

    # subclasses override -------------------------------------------------

    def wall_seconds(self) -> float:
        """Aggregate wall-clock attributed to this backend so far."""
        raise NotImplementedError

    def execute_batch(
        self, batch_id: int, jobs: list[Job], registry: SessionRegistry
    ) -> BatchReport:
        raise NotImplementedError

    # async dispatch interface (supports_async backends only) -------------

    def dispatch_batch(
        self, batch_id: int, jobs: list[Job], registry: SessionRegistry
    ) -> None:
        """Hand a formed batch to external workers without blocking."""
        raise NotImplementedError(f"{self.name} does not dispatch asynchronously")

    def poll(self, timeout: float = 0.0):
        """Collect completed batches: a list of ``(report, jobs)`` pairs."""
        raise NotImplementedError(f"{self.name} does not dispatch asynchronously")

    @property
    def in_flight(self) -> int:
        """Jobs dispatched to workers but not yet settled."""
        return 0

    def close(self) -> None:
        """Release external resources (worker processes); idempotent."""

    # shared helpers ------------------------------------------------------

    def _engine(self, registry: SessionRegistry, session: Session) -> Bfv:
        return registry.engine(session)

    def _run_job(
        self, registry: SessionRegistry, job: Job
    ) -> tuple[Session, object, Workload | None]:
        """Functional execution; returns (session, result, app workload)."""
        session = registry.get(job.session_id)
        if job.kind.is_app:
            result, workload = self._apps.run(job)
            return session, result, workload
        if job.kind is JobKind.CIRCUIT:
            return session, self._run_circuit(registry, session, job), None
        for ct in job.operands:
            registry.check_compatible(session, ct)
        engine = self._engine(registry, session)
        return session, execute_functional(engine, session, job), None

    def _run_circuit(
        self, registry: SessionRegistry, session: Session, job: Job,
        on_tensor=None,
    ) -> dict[str, Ciphertext]:
        """Evaluate a circuit job exactly; returns its named outputs.

        ``on_tensor`` (chip pool only) observes each Eq. 4 tensor's
        operands so the tensor can be replayed tower-by-tower on chip.
        """
        circuit: Circuit = job.payload
        for ct in job.operands:
            registry.check_compatible(session, ct)
        engine = self._engine(registry, session)
        relin = session.require_relin() if circuit.uses_relin else None
        galois = session.require_galois if circuit.uses_rotations else None
        return evaluate_circuit(
            engine, relin, circuit, job.operands, on_tensor=on_tensor,
            galois=galois,
        )

    @staticmethod
    def _fail_job(job: Job, batch_id: int, name: str, exc: Exception) -> None:
        """Fault isolation: one bad job fails alone, the batch continues."""
        job.fail(str(exc))
        job.metrics.backend = name
        job.metrics.batch_id = batch_id

    def _defer_candidate(
        self, registry: SessionRegistry, job: Job
    ) -> tuple[Job, Session, Bfv] | None:
        """Whether a keyed MULTIPLY/SQUARE can join the batched tensor path.

        Batch-aware relinearization: instead of each job folding its own
        digit decomposition through the eval key, the backend runs only
        the Eq. 4 tensor (batched across the candidates, see
        :meth:`_tensor_deferred`) and joins the job to the batch's shared
        key-switch pass (one :meth:`~repro.bfv.scheme.Bfv.relinearize_many`
        call per eval-key digest). Returns ``None`` when the job must take
        the ordinary per-job path — unkeyed, non-tensor, or an engine that
        cannot carry the batched fold.
        """
        if job.kind not in (JobKind.MULTIPLY, JobKind.SQUARE):
            return None
        session = registry.get(job.session_id)
        if session.relin is None:
            return None
        for ct in job.operands:
            registry.check_compatible(session, ct)
        engine = self._engine(registry, session)
        if not engine.can_batch_relinearize(session.relin):
            return None
        return job, session, engine

    @staticmethod
    def _tensor_deferred(
        candidates, trace_execute: bool = True,
        wait_from: float | None = None,
    ):
        """Run the deferred candidates' Eq. 4 tensors, batched per engine.

        One :meth:`~repro.bfv.scheme.Bfv.multiply_many` call per engine
        covers every candidate's tensor (the operand transforms ride one
        forward pass, one inverse covers all components). If the batched
        call raises, the group re-runs job by job so a bad operand fails
        alone. Returns ``(entries, failures)``: entries are
        ``(job, session, engine, tensor, seconds)`` with the measured
        tensor window split evenly across the group; failures are
        ``(job, exc)``.

        When ``trace_execute`` is on, ``wait_from`` (the batch start)
        closes each deferred job's attribution gap: a candidate skips
        the per-job loop, so its wait on batch siblings runs until its
        tensor actually starts — marked here as ``batch_wait``.
        """
        groups: dict[int, list] = {}
        for cand in candidates:
            groups.setdefault(id(cand[2]), []).append(cand)
        entries: list[tuple] = []
        failures: list[tuple[Job, Exception]] = []
        for group in groups.values():
            engine = group[0][2]
            pairs = [
                (
                    job.operands[0],
                    job.operands[1] if job.kind is JobKind.MULTIPLY else None,
                )
                for job, _session, _engine in group
            ]
            t0 = time.perf_counter()
            try:
                tensors = engine.multiply_many(pairs)
            except Exception:  # noqa: BLE001 — re-run alone to attribute
                tensors = None
            t1 = time.perf_counter()
            if tensors is not None:
                share = (t1 - t0) / len(group)
                for (job, session, eng), tensor in zip(group, tensors):
                    if trace_execute and job.trace.enabled:
                        if wait_from is not None:
                            job.trace.mark("batch_wait", wait_from, t0)
                        job.trace.mark("execute", t0, t1)
                    entries.append((job, session, eng, tensor, share))
                continue
            for job, session, eng in group:
                s0 = time.perf_counter()
                try:
                    tensor = (
                        eng.multiply(job.operands[0], job.operands[1])
                        if job.kind is JobKind.MULTIPLY
                        else eng.square(job.operands[0])
                    )
                except Exception as exc:  # noqa: BLE001 — fail alone
                    failures.append((job, exc))
                    continue
                s1 = time.perf_counter()
                if trace_execute and job.trace.enabled:
                    if wait_from is not None:
                        job.trace.mark("batch_wait", wait_from, s0)
                    job.trace.mark("execute", s0, s1)
                entries.append((job, session, eng, tensor, s1 - s0))
        return entries, failures

    @staticmethod
    def _keyswitch_groups(deferred):
        """Group deferred entries by (engine, eval key) for one shared fold."""
        groups: dict[tuple[int, int], list] = {}
        for entry in deferred:
            key = (id(entry[2]), id(entry[1].relin))
            groups.setdefault(key, []).append(entry)
        return list(groups.values())


# ----------------------------------------------------------------------
# Chip pool
# ----------------------------------------------------------------------


@dataclass
class ChipWorker:
    """One simulated CoFHEE chip plus its host driver and accounting."""

    index: int
    chip: CoFHEE
    driver: CofheeDriver
    busy_cycles: int = 0
    io_seconds: float = 0.0

    @property
    def programmed(self) -> tuple[int, int] | None:
        """The driver's currently programmed ``(q, n)`` (batch amortization)."""
        return self.driver.programmed

    def run_tower(
        self,
        ct_a: tuple[list[int], list[int]],
        ct_b: tuple[list[int], list[int]],
        q: int,
    ) -> tuple[list[list[int]], int]:
        """Execute one tower's Algorithm 3 on this chip; returns (outs, cycles).

        Reprogramming is amortized by the driver (a worker sweeping many
        same-modulus work units pays the twiddle download once); compute
        cycles land on ``busy_cycles`` and host-link time on ``io_seconds``.
        """
        outs, report = self.driver.ciphertext_multiply_tower(ct_a, ct_b, q)
        self.io_seconds += report.io_seconds
        self.busy_cycles += report.cycles
        return outs, report.cycles

    @property
    def wall_seconds(self) -> float:
        return (
            self.busy_cycles / self.chip.clock.frequency_hz + self.io_seconds
        )


@dataclass(frozen=True)
class _TensorUnit:
    """One Eq. 4 tensor to replay tower-by-tower on the chip pool.

    A raw EvalMult/SQUARE job is a single level-0 unit; a circuit job
    contributes one unit per tensor step, with ``level`` its dependency
    depth (see :meth:`~repro.service.circuits.Circuit.tensor_levels`).
    The dispatcher list-schedules on true producer edges
    (:meth:`ChipPoolBackend._unit_dependencies`), so a unit is never
    planned before the units whose outputs it consumes have cleared the
    gather barrier — ``level`` remains the depth summary the planner's
    wave ordering reduces to for a pure tensor chain.
    """

    unit: int  # gather key, unique within the batch
    job_seq: int  # owning job's position within the batch
    level: int
    a: Ciphertext
    b: Ciphertext


class ChipPoolBackend(Backend):
    """Batches dispatched across a pool of N simulated CoFHEE chips.

    Two levels of parallelism:

    * **Job level** — model-priced jobs (add/sub/rotate/relinearize/apps,
      and tensors whose moduli are not chip-native) run on the batch's
      least-loaded *lead* worker.
    * **Tower level** — a chip-native EvalMult (or squaring: the same
      Eq. 4 tensor with ``a == b``) is split into one work unit
      per RNS tower and fanned out across *different* workers
      (least-loaded, with per-tower ``program(q_i, n)`` reprogramming
      amortized across the batch), so a 3-tower multiply on a pool of 4
      finishes in ~one tower's time. Every tower runs the real Algorithm 3
      command stream on its worker's driver and is cross-checked mod
      ``q_i`` against the software reference; the gather barrier releases
      a job only once its full tower set has arrived.

    App circuits expand at the same tower level: each
    ``mul_relin``/``square_relin`` step becomes its own
    :class:`_TensorUnit`, list-scheduled on true producer edges so a
    tensor that consumes another tensor's output is never planned before
    its producer clears the gather barrier (and an independent tensor is
    never held back by an unrelated chain); linear steps (adds,
    plaintext multiply-accumulates) are pointwise-priced on the lead
    worker.

    The pool's aggregate wall time is the makespan (max per-worker busy
    time), which is what shrinks as the pool grows. Cycles for non-native
    work come from compiling the Algorithm 3 DAG with
    :class:`~repro.core.scheduler.Scheduler`. With ``strict_fidelity`` a
    MULTIPLY that cannot run its tensor on-chip fails instead of silently
    degrading to the model path.
    """

    def __init__(self, pool_size: int = 1, chip_config: ChipConfig | None = None,
                 data_fidelity: bool = True, strict_fidelity: bool = False,
                 engine: str = "exact"):
        super().__init__()
        if pool_size < 1:
            raise ValueError("pool needs at least one chip")
        if engine not in ("exact", "fast"):
            raise ValueError(f"engine must be 'exact' or 'fast', got {engine!r}")
        if strict_fidelity and not data_fidelity:
            raise ValueError(
                "strict_fidelity requires data_fidelity: with the chip path "
                "disabled, every EvalMult would fail"
            )
        self.name = f"chip_pool_x{pool_size}"
        self.data_fidelity = data_fidelity
        self.strict_fidelity = strict_fidelity
        self.engine_mode = engine
        self.workers = []
        for i in range(pool_size):
            chip = CoFHEE(chip_config)
            self.workers.append(
                ChipWorker(index=i, chip=chip, driver=CofheeDriver(chip))
            )
        self._mod_q_reference: dict[bytes, SoftwareBfv] = {}
        self._tensor_estimate: dict[int, int] = {}  # n -> per-tower cycles
        self._no_fast_engine: set[bytes] = set()  # digests that can't go fast
        self._overlap_cycles = 0  # cumulative cross-batch pipeline overlap
        self._schedule_makespan = 0  # cumulative list-schedule makespans

    # -- accounting --------------------------------------------------------

    @property
    def wall_cycles(self) -> int:
        """Pool makespan in cycles (what pool scaling reduces)."""
        return max(w.busy_cycles for w in self.workers)

    @property
    def total_cycles(self) -> int:
        return sum(w.busy_cycles for w in self.workers)

    def wall_seconds(self) -> float:
        return max(w.wall_seconds for w in self.workers)

    # -- engines ------------------------------------------------------------

    def _engine(self, registry: SessionRegistry, session: Session) -> Bfv:
        """Functional engine for host-side exact arithmetic.

        ``engine="fast"`` opts into the registry's vectorized numpy engine
        where the moduli permit (bit-identical results — the differential
        suite proves it); the cycle accounting is unaffected either way.
        """
        if self.engine_mode == "fast" and session.digest not in self._no_fast_engine:
            try:
                return registry.fast_engine(session)
            except ValueError:
                # Moduli unsuitable: remember it (construction is the
                # expensive part) and fall back to the exact engine.
                self._no_fast_engine.add(session.digest)
        return registry.engine(session)

    # -- execution ----------------------------------------------------------

    def execute_batch(
        self, batch_id: int, jobs: list[Job], registry: SessionRegistry
    ) -> BatchReport:
        lead = min(self.workers, key=lambda w: (w.busy_cycles, w.index))
        freq = lead.chip.clock.frequency_hz
        busy_before = {w.index: w.busy_cycles for w in self.workers}
        io_before = {w.index: w.io_seconds for w in self.workers}
        fidelity: dict[str, int] = {}
        # Wall-clock sections of this batch, attributed to *every* job in
        # it at the end (each job's clock ticks through all of them; a
        # job's own Phase 1 execution becomes a child span). Multiple
        # windows per phase are fine — attribution sums them.
        sections: list[tuple[str, float, float]] = []
        own_exec: dict[int, tuple[float, float]] = {}
        p1_start = time.perf_counter()

        # Phase 1 — functional execution (exact host-side arithmetic).
        # Strict-fidelity rejection comes first: the chip-native check
        # needs only the session, so a doomed EvalMult (or a circuit with
        # tensor steps) never pays for the (expensive) host-side math.
        # Circuit jobs evaluate with a tensor hook that records every
        # Eq. 4 tensor's operands for the tower-sharded chip replay.
        live: list[tuple[int, Job, Session, object, Workload | None]] = []
        traces: dict[int, list[tuple[int, Ciphertext, Ciphertext]]] = {}
        #: seq -> (engine, size-3 tensor) for jobs whose relinearization is
        #: deferred to the batched chip-side key-switch in Phase 5.
        deferred: dict[int, tuple[Bfv, Ciphertext]] = {}
        # Pre-pass: every chip-bound keyed tensor rides one batched
        # engine call (the key-switches execute in Phase 5 as chip-side
        # work units). A job whose candidacy or tensor fails here simply
        # stays out of ``pre`` and takes the per-job path below, which
        # re-raises with per-job fault attribution.
        pre: dict[int, tuple[Session, Bfv, Ciphertext]] = {}
        if self.data_fidelity:
            cands: list[tuple[int, tuple[Job, Session, Bfv]]] = []
            for seq, job in enumerate(jobs):
                if job.kind not in (JobKind.MULTIPLY, JobKind.SQUARE):
                    continue
                try:
                    if self._chip_native_basis(
                            registry.get(job.session_id)) is None:
                        continue
                    cand = self._defer_candidate(registry, job)
                except Exception:  # noqa: BLE001 — per-job path attributes
                    continue
                if cand is not None:
                    cands.append((seq, cand))
            entries, _failures = self._tensor_deferred(
                [c for _, c in cands], trace_execute=False
            )
            by_job = {id(e[0]): e for e in entries}
            for seq, (job, _session, _engine) in cands:
                entry = by_job.get(id(job))
                if entry is not None:
                    pre[seq] = (entry[1], entry[2], entry[3])
        for seq, job in enumerate(jobs):
            own_start = time.perf_counter()
            try:
                needs_tensor = (
                    job.kind in (JobKind.MULTIPLY, JobKind.SQUARE)
                    or (job.kind is JobKind.CIRCUIT
                        and job.payload.tensor_steps)
                )
                if self.strict_fidelity and needs_tensor:
                    session = registry.get(job.session_id)
                    if self._chip_native_basis(session) is None:
                        raise BackendError(
                            "strict fidelity: EvalMult tensor cannot execute "
                            f"on-chip for {session.params.describe()} "
                            "(moduli not chip-native)"
                        )
                if job.kind is JobKind.CIRCUIT:
                    session = registry.get(job.session_id)
                    trace: list[tuple[int, Ciphertext, Ciphertext]] = []
                    result = self._run_circuit(
                        registry, session, job,
                        on_tensor=lambda i, a, b: trace.append((i, a, b)),
                    )
                    traces[seq] = trace
                    workload = None
                else:
                    entry = pre.get(seq)
                    if entry is not None:
                        session, d_engine, tensor = entry
                        result, workload = tensor, None
                        deferred[seq] = (d_engine, tensor)
                    else:
                        session, result, workload = self._run_job(registry, job)
            except Exception as exc:  # noqa: BLE001 — jobs must fail alone
                self._fail_job(job, batch_id, self.name, exc)
                continue
            own_exec[seq] = (own_start, time.perf_counter())
            live.append((seq, job, session, result, workload))
        sections.append(("execute", p1_start, time.perf_counter()))

        # Phase 2 — split chip-path (tower-sharded) from model-path jobs.
        # Chip-path work is a list of _TensorUnits: one per raw EvalMult/
        # SQUARE, one per tensor step of a circuit (leveled by dependency
        # depth).
        split_start = time.perf_counter()
        chip_jobs: dict[int, tuple[Job, Session, object, RnsBasis]] = {}
        units: list[_TensorUnit] = []
        job_units: dict[int, list[_TensorUnit]] = {}
        unit_ids = itertools.count()
        model_path = []
        for seq, job, session, result, workload in live:
            wants_chip = (
                self.data_fidelity
                and workload is None
                and (job.kind in (JobKind.MULTIPLY, JobKind.SQUARE)
                     or (job.kind is JobKind.CIRCUIT and traces.get(seq)))
            )
            basis = self._chip_native_basis(session) if wants_chip else None
            if basis is not None:
                if job.kind is JobKind.CIRCUIT:
                    levels = job.payload.tensor_levels()
                    new = [
                        _TensorUnit(next(unit_ids), seq, levels[step], a, b)
                        for step, a, b in traces[seq]
                    ]
                else:
                    a = job.operands[0]
                    b = job.operands[1] if job.kind is JobKind.MULTIPLY else a
                    new = [_TensorUnit(next(unit_ids), seq, 0, a, b)]
                units.extend(new)
                job_units[seq] = new
                chip_jobs[seq] = (job, session, result, basis)
            else:
                model_path.append((seq, job, session, result, workload))
        sections.append(("tower_dispatch", split_start, time.perf_counter()))

        # Phase 3 — model-path jobs run serially on the lead worker.
        p3_start = time.perf_counter()
        for seq, job, session, result, workload in model_path:
            try:
                cycles = self._job_cycles(lead, session, job, workload)
            except Exception as exc:  # noqa: BLE001 — jobs must fail alone
                self._fail_job(job, batch_id, self.name, exc)
                continue
            lead.busy_cycles += cycles
            job.metrics.fidelity = "model"
            fidelity["model"] = fidelity.get("model", 0) + 1
            if (workload is None and session.relin is not None
                    and (job.kind in (JobKind.MULTIPLY, JobKind.SQUARE)
                         or (job.kind is JobKind.CIRCUIT
                             and job.payload.uses_relin))):
                # Engine-capable params ran their key-switch through the
                # batched fold inside the functional execution; only the
                # tail *pricing* is modeled. Params the engine cannot
                # carry keep the model flag.
                label = (
                    "engine"
                    if self._engine(registry, session).can_batch_relinearize(
                        session.relin
                    )
                    else "model"
                )
                job.metrics.relin_fidelity = label
                fidelity[f"relin_{label}"] = fidelity.get(f"relin_{label}", 0) + 1
            self._finish_job(job, batch_id, lead.index, cycles, freq, result)
        if model_path:
            sections.append(("execute", p3_start, time.perf_counter()))

        # Phase 4 — tower fan-out by list scheduling. True producer edges
        # (register dataflow through the circuit, see _unit_dependencies)
        # replace the old level-by-level pool barrier: a unit becomes
        # plannable the moment its own producers have finished, and its
        # start time is simulated against per-worker clocks — so a
        # consumer of an early-finishing tensor no longer waits for an
        # unrelated deep chain to clear a level. Work is still planned in
        # ready waves through plan_tower_dispatch (same-modulus grouping
        # and twiddle-reprogramming amortization are unchanged, and the
        # affinity hint only counts a worker's programmed modulus when
        # its programmed degree matches this batch), but start/finish
        # bookkeeping is per unit: busy-cycle totals stay additive while
        # the simulated clocks expose the true schedule makespan.
        batch_n = (
            next(iter(chip_jobs.values()))[1].params.n if chip_jobs else None
        )
        gather = TowerGather({
            u.unit: tuple(range(len(chip_jobs[u.job_seq][3].moduli)))
            for u in units
        })
        failed: set[int] = set()  # job seqs with a failed unit
        unit_cycles: dict[int, dict[int, int]] = {}
        unit_workers: dict[int, dict[int, int]] = {}
        unit_deps = self._unit_dependencies(chip_jobs, job_units, traces)
        unit_by_id = {u.unit: u for u in units}
        # Simulated per-worker clocks (absolute cycles, origin shared
        # with busy_cycles) drive ready-time bookkeeping; ``finish``
        # records when each unit's last tower completes in the schedule.
        clock: dict[int, int] = {w.index: w.busy_cycles for w in self.workers}
        finish: dict[int, int] = {}
        remaining: dict[int, _TensorUnit] = {u.unit: u for u in units}
        # Cross-batch pipelining: per-worker cycles this batch's
        # *dependency-free* units added (the level-0 analog). A worker
        # below the pool barrier (the previous batch's makespan point)
        # has idle headroom there, so its share of those units starts
        # inside the previous batch's gather window.
        dep_free = {u.unit for u in units if not unit_deps.get(u.unit)}
        level0_added: dict[int, int] = {}
        while remaining:
            t_plan = time.perf_counter()
            # Units of failed jobs leave the schedule wholesale (their
            # gather slots were discarded at failure time). Dependencies
            # never cross jobs, so dropping them cannot starve the rest.
            for uid in [
                uid for uid, u in remaining.items() if u.job_seq in failed
            ]:
                del remaining[uid]
            ready = [
                u for uid, u in sorted(remaining.items())
                if all(d in finish for d in unit_deps.get(uid, ()))
            ]
            if not ready:
                break
            ready_at = {
                u.unit: max(
                    (finish[d] for d in unit_deps.get(u.unit, ())),
                    default=0,
                )
                for u in ready
            }
            items = []
            for u in ready:
                _job, session, _result, basis = chip_jobs[u.job_seq]
                est = self._tensor_estimate_for(session.params.n)
                items.extend(tower_items_for(u.unit, basis.moduli, est))
            plan = plan_tower_dispatch(
                items,
                [w.busy_cycles for w in self.workers],
                [
                    w.programmed[0]
                    if w.programmed and w.programmed[1] == batch_n else None
                    for w in self.workers
                ],
                metrics=self.metrics,
            )
            t_run = time.perf_counter()
            sections.append(("tower_dispatch", t_plan, t_run))
            for widx in sorted(plan):
                worker = self.workers[widx]
                for item in plan[widx]:
                    u = unit_by_id[item.job_seq]  # item keys are unit ids
                    if u.job_seq in failed:
                        continue
                    job, session, _result, _basis = chip_jobs[u.job_seq]
                    try:
                        outs, cycles = self._run_tower_checked(
                            worker, session, u.a, u.b, item
                        )
                    except Exception as exc:  # noqa: BLE001 — fail alone
                        self._fail_job(job, batch_id, self.name, exc)
                        failed.add(u.job_seq)
                        for ju in job_units[u.job_seq]:
                            gather.discard(ju.unit)
                        continue
                    gather.put(item.job_seq, item.tower, outs)
                    unit_cycles.setdefault(u.unit, {})[item.tower] = cycles
                    unit_workers.setdefault(u.unit, {})[item.tower] = widx
                    # List-schedule clock: the item starts when both its
                    # worker is free and the unit's producers are done.
                    start = max(clock[widx], ready_at[u.unit])
                    clock[widx] = start + cycles
                    finish[u.unit] = max(
                        finish.get(u.unit, 0), clock[widx]
                    )
                    if u.unit in dep_free:
                        level0_added[widx] = level0_added.get(widx, 0) + cycles
            t_gather = time.perf_counter()
            sections.append(("worker_execute", t_run, t_gather))
            # Per-unit gather: every surviving ready unit must have its
            # full tower set before its consumers are planned — the
            # barrier is per producer edge now, not per pool level.
            for u in ready:
                if u.job_seq not in failed:
                    gather.towers(u.unit)
                remaining.pop(u.unit, None)
            sections.append(("gather_barrier", t_gather, time.perf_counter()))
        schedule_end = max(clock.values(), default=0)

        # Phase 5 — barrier settled. Sweep A (CRT recombination view):
        # aggregate per-tower cycles and worker sets across each job's
        # units — pure reads of the gather results. Sweep B (same job
        # order, so the then-least-loaded relin worker selection is
        # unchanged): price each tensor's relinearization tail (and a
        # circuit's linear steps on the lead), and finish the job.
        crt_start = time.perf_counter()
        batch_tower_cycles: dict[int, int] = {}
        recombined: dict[int, tuple[list[int], set[int]]] = {}
        for seq, (job, session, result, basis) in chip_jobs.items():
            if seq in failed:
                continue
            towers_n = len(basis.moduli)
            per_tower = [0] * towers_n
            workers_used: set[int] = set()
            for u in job_units[seq]:
                for t in range(towers_n):
                    per_tower[t] += unit_cycles[u.unit][t]
                workers_used.update(unit_workers[u.unit].values())
            recombined[seq] = (per_tower, workers_used)
            for t, c in enumerate(per_tower):
                batch_tower_cycles[t] = batch_tower_cycles.get(t, 0) + c
        if recombined:
            sections.append(("crt_recombine", crt_start, time.perf_counter()))

        # Chip-side key-switch: every deferred tensor's relinearization
        # executes here as one batched engine fold per eval-key digest —
        # the digit decomposition, forward NTT, and key-row accumulation
        # are shared across the group's jobs instead of re-run per job.
        ks_results: dict[int, Ciphertext] = {}
        ks_live = [s for s in chip_jobs if s not in failed and s in deferred]
        if ks_live:
            ks_start = time.perf_counter()
            ks_groups: dict[tuple[int, int], list[int]] = {}
            for s in ks_live:
                key = (id(deferred[s][0]), id(chip_jobs[s][1].relin))
                ks_groups.setdefault(key, []).append(s)
            for seqs in ks_groups.values():
                eng = deferred[seqs[0]][0]
                relin = chip_jobs[seqs[0]][1].relin
                try:
                    outs = eng.relinearize_many(
                        [deferred[s][1] for s in seqs], relin
                    )
                except Exception as exc:  # noqa: BLE001 — jobs fail alone
                    for s in seqs:
                        self._fail_job(chip_jobs[s][0], batch_id, self.name, exc)
                        failed.add(s)
                    continue
                ks_results.update(zip(seqs, outs))
            sections.append(("keyswitch", ks_start, time.perf_counter()))

        relin_start = time.perf_counter()
        for seq, (job, session, result, basis) in chip_jobs.items():
            if seq in failed:
                continue
            towers_n = len(basis.moduli)
            per_tower, workers_used = recombined[seq]
            relin_cycles = 0
            finish_worker = lead
            timing = self.workers[0].chip.timing
            # Key-switch tails run after each unit's gather and are not
            # tower-bound: each becomes a KeySwitchWorkItem charged to
            # the then-least-loaded worker so it does not serialize on
            # the lead. Raw jobs carry one relinearization; circuits one
            # per relin *step* (a lazily optimized circuit relinearizes
            # fewer times than it tensors) plus one per rotation step
            # (the Galois key-switch, after the lead's automorphism
            # copies).
            n_relins = (
                job.payload.op_counts()["relins"]
                if job.kind is JobKind.CIRCUIT else 1
            )
            items = []
            if session.relin is not None and n_relins:
                est = timing.relinearization_cycles(
                    session.params.n, session.relin.num_digits, towers_n
                )
                items.extend(
                    KeySwitchWorkItem(job_seq=seq, est_cycles=est)
                    for _ in range(n_relins)
                )
            if job.kind is JobKind.CIRCUIT and job.payload.uses_rotations:
                for step in job.payload.steps:
                    if step.op not in ROTATION_OPS:
                        continue
                    exponent = rotation_exponent(
                        session.params, step.op,
                        step.args[1] if step.op == OP_ROTATE_ROWS else 0,
                    )
                    key = session.require_galois(exponent)
                    items.append(KeySwitchWorkItem(
                        job_seq=seq,
                        est_cycles=timing.relinearization_cycles(
                            session.params.n, len(key.rows), towers_n
                        ),
                    ))
                    # Automorphism = one copy pass per component, on the
                    # lead before the key-switch fans out.
                    copies = 2 * timing.memcpy_cycles(session.params.n)
                    lead.busy_cycles += copies
                    relin_cycles += copies
            if items:
                widxs = plan_keyswitch_dispatch(
                    items, [w.busy_cycles for w in self.workers]
                )
                for item, widx in zip(items, widxs):
                    self.workers[widx].busy_cycles += item.est_cycles
                    relin_cycles += item.est_cycles
                finish_worker = self.workers[widxs[-1]]
            if session.relin is not None and n_relins:
                capable = seq in ks_results or self._engine(
                    registry, session
                ).can_batch_relinearize(session.relin)
                label = "engine" if capable else "model"
                job.metrics.relin_fidelity = label
                fidelity[f"relin_{label}"] = fidelity.get(f"relin_{label}", 0) + 1
            linear_cycles = 0
            if job.kind is JobKind.CIRCUIT:
                linear_cycles = self._circuit_linear_cycles(
                    session, job.payload
                )
                lead.busy_cycles += linear_cycles
            job.metrics.fidelity = "chip"
            job.metrics.tower_cycles = tuple(per_tower)
            if job.kind is JobKind.CIRCUIT:
                # Many tensors may touch one tower: report the distinct
                # workers that executed this job's towers.
                job.metrics.tower_workers = tuple(sorted(workers_used))
            else:
                only = job_units[seq][0]
                job.metrics.tower_workers = tuple(
                    unit_workers[only.unit][t] for t in range(towers_n)
                )
            job.metrics.relin_cycles = relin_cycles
            fidelity["chip"] = fidelity.get("chip", 0) + 1
            self._finish_job(
                job, batch_id, finish_worker.index,
                sum(per_tower) + relin_cycles + linear_cycles, freq,
                ks_results.get(seq, result),
            )
        if recombined:
            sections.append(("relin_tail", relin_start, time.perf_counter()))

        # Attribute every batch section to every job's trace: the job's
        # clock ticked through all of them. Windows are clipped at the
        # job's completion (a model-path job finishes in Phase 3; later
        # sections are not its latency), and the job's own Phase 1
        # functional execution nests as a child of the execute window.
        for seq, job in enumerate(jobs):
            trace = job.trace
            if not trace.enabled:
                continue
            done = trace.done_at
            first_execute = True
            for phase, start, end in sections:
                if done is not None:
                    if start >= done:
                        continue
                    end = min(end, done)
                index = trace.mark(phase, start, end)
                if phase == "execute" and first_execute:
                    first_execute = False
                    if seq in own_exec:
                        o_start, o_end = own_exec[seq]
                        if start <= o_start < end:
                            trace.mark(
                                "execute", o_start, min(o_end, end),
                                parent=index,
                            )

        added = {
            w.index: w.busy_cycles - busy_before[w.index] for w in self.workers
        }
        batch_cycles = sum(added.values())
        used = tuple(sorted(i for i, c in added.items() if c > 0))
        # Cross-batch pipelining: a worker whose busy clock sat below the
        # pool barrier (the previous batch's makespan point) starts its
        # first-level tower units inside the previous batch's gather
        # window. ``overlap`` counts those early-start cycles; the batch's
        # pipelined extent is how far it pushes the pool frontier beyond
        # the barrier — at most the un-pipelined makespan.
        barrier_start = max(busy_before.values())
        overlap = sum(
            min(level0_added.get(w.index, 0),
                max(0, barrier_start - busy_before[w.index]))
            for w in self.workers
        )
        pipelined = max(w.busy_cycles for w in self.workers) - barrier_start
        # List-schedule view of the same batch: how far the simulated
        # clocks (which honor producer edges, not pool levels) ran past
        # the barrier. Dependency slack makes this ≤ the additive share.
        schedule_makespan = max(0, schedule_end - barrier_start)
        self._overlap_cycles += overlap
        self._schedule_makespan += schedule_makespan
        if self.metrics is not None:
            self.metrics.gauge(
                "repro_pipeline_overlap_cycles",
                "cumulative tower cycles started inside a previous "
                "batch's gather window",
            ).set(self._overlap_cycles)
            self.metrics.gauge(
                "repro_schedule_makespan_cycles",
                "cumulative list-scheduling makespan (per-unit ready "
                "times against simulated per-worker clocks)",
            ).set(self._schedule_makespan)
            total = self.total_cycles
            for w in self.workers:
                self.metrics.gauge(
                    "repro_worker_busy_cycles",
                    "cumulative busy cycles per pool worker",
                    worker=w.index,
                ).set(w.busy_cycles)
                self.metrics.gauge(
                    "repro_worker_busy_fraction",
                    "worker share of the pool's total busy cycles",
                    worker=w.index,
                ).set(w.busy_cycles / total if total else 0.0)
        return BatchReport(
            batch_id=batch_id,
            backend=self.name,
            worker=lead.index,
            jobs=len(jobs),
            cycles=batch_cycles,
            seconds=batch_cycles / freq,
            io_seconds=sum(
                w.io_seconds - io_before[w.index] for w in self.workers
            ),
            workers=used or (lead.index,),
            makespan_cycles=max(added.values(), default=0),
            tower_cycles=tuple(
                batch_tower_cycles.get(t, 0)
                for t in range(len(batch_tower_cycles))
            ),
            fidelity=fidelity,
            overlap_cycles=overlap,
            pipelined_makespan_cycles=pipelined,
            schedule_makespan_cycles=schedule_makespan,
        )

    def _finish_job(
        self, job: Job, batch_id: int, worker_index: int, cycles: int,
        freq: float, result: object,
    ) -> None:
        job.finish(result)
        job.metrics.backend = self.name
        job.metrics.worker = worker_index
        job.metrics.batch_id = batch_id
        job.metrics.cycles = cycles
        job.metrics.seconds = cycles / freq
        self.jobs_done += 1

    # -- tower-sharded chip execution ---------------------------------------

    def _chip_native_basis(self, session: Session) -> RnsBasis | None:
        """The session's CoFHEE basis, iff every tower can run on a chip.

        Chip-native means the basis covers exactly ``q``, every tower
        modulus supports the negacyclic NTT at the session's degree
        (``q_i === 1 mod 2n``), fits the chip's Q register, and one
        polynomial fits an on-chip bank. Non-native sessions take the
        model path (or fail under ``strict_fidelity``) instead of
        faulting a driver mid-batch.
        """
        params = session.params
        basis = params.cofhee_basis
        if basis is None or basis.modulus != params.q:
            return None
        if params.n > self.workers[0].chip.config.poly_words:
            return None
        q_bits = self.workers[0].chip.regs.spec("Q").bits
        if any(q.bit_length() > q_bits for q in basis.moduli):
            return None
        if any((q - 1) % (2 * params.n) != 0 for q in basis.moduli):
            return None
        return basis

    @staticmethod
    def _unit_dependencies(
        chip_jobs: dict[int, tuple],
        job_units: dict[int, list[_TensorUnit]],
        traces: dict[int, list[tuple[int, Ciphertext, Ciphertext]]],
    ) -> dict[int, set[int]]:
        """Per-unit producer edges from circuit register dataflow.

        Walks each circuit's SSA steps tracking, per register, the set of
        tensor units whose outputs flow into it (non-tensor steps pass
        their operands' producer sets through). A unit's dependencies are
        the producers feeding its own tensor step's operands — the true
        edges the list scheduler honors, replacing the conservative
        depth-level barrier. Raw EvalMult/SQUARE jobs have one unit and
        no producers; dependencies never cross jobs.
        """
        deps: dict[int, set[int]] = {}
        for seq, entry in chip_jobs.items():
            job = entry[0]
            units = job_units.get(seq, [])
            if job.kind is not JobKind.CIRCUIT:
                for u in units:
                    deps[u.unit] = set()
                continue
            circuit: Circuit = job.payload
            unit_by_step = {
                step: u.unit
                for (step, _a, _b), u in zip(traces[seq], units)
            }
            producers: list[set[int]] = [
                set() for _ in range(len(circuit.inputs))
            ]
            for idx, step in enumerate(circuit.steps):
                feeding: set[int] = set()
                for arg, role in zip(step.args, OP_SPECS[step.op][1]):
                    if role == "r":
                        feeding |= producers[arg]
                uid = unit_by_step.get(idx)
                if uid is not None:
                    deps[uid] = feeding
                    producers.append({uid})
                else:
                    producers.append(feeding)
        return deps

    def _run_tower_checked(
        self, worker: ChipWorker, session: Session, a: Ciphertext,
        b: Ciphertext, item
    ) -> tuple[list[list[int]], int]:
        """One tower's Algorithm 3 on ``worker``, cross-checked mod q_i.

        ``a``/``b`` are the tensor's 2-component operands — a raw job's
        uploaded ciphertexts, or a circuit step's (possibly intermediate)
        values. SQUARE runs the same command stream with both inputs
        bound to the one operand (the Eq. 4 tensor with ``a == b``).
        """
        ct_a = (a.polys[0].coeffs, a.polys[1].coeffs)
        ct_b = (b.polys[0].coeffs, b.polys[1].coeffs)
        outs, cycles = worker.run_tower(ct_a, ct_b, item.modulus)
        expected = self._reference_for(session).tower_multiply(
            item.modulus, ct_a, ct_b
        )
        if outs != expected:
            raise BackendError(
                f"chip {worker.index} mod-q tensor diverged from the "
                f"software reference on tower {item.tower} "
                f"(q_i = {item.modulus}) — datapath fault"
            )
        return outs, cycles

    # -- cycle accounting ---------------------------------------------------

    def _job_cycles(
        self, worker: ChipWorker, session: Session, job: Job,
        workload: Workload | None,
    ) -> int:
        params = session.params
        timing = worker.chip.timing
        if workload is not None:  # app-level job: price the op mix
            cost = CofheeAppCost(params, timing)
            seconds = cost.workload_seconds(workload)["total_s"]
            return round(seconds * worker.chip.clock.frequency_hz)
        n, towers = params.n, params.cofhee_tower_count
        if job.kind is JobKind.CIRCUIT:
            # Model path for a whole circuit: linear steps pointwise,
            # each tensor step one Eq. 4 estimate, each relin step one
            # key-switch tail (fewer than the tensors after lazy
            # optimization), each rotation an automorphism copy pass
            # plus a Galois key-switch.
            circuit: Circuit = job.payload
            counts = circuit.op_counts()
            cycles = self._circuit_linear_cycles(session, circuit)
            if counts["ct_ct_mults"]:
                cycles += (
                    counts["ct_ct_mults"] * towers * self._tensor_estimate_for(n)
                )
            if counts["relins"]:
                cycles += counts["relins"] * timing.relinearization_cycles(
                    n, session.require_relin().num_digits, towers
                )
            for step in circuit.steps:
                if step.op not in ROTATION_OPS:
                    continue
                key = session.require_galois(rotation_exponent(
                    params, step.op,
                    step.args[1] if step.op == OP_ROTATE_ROWS else 0,
                ))
                cycles += 2 * timing.memcpy_cycles(n)
                cycles += timing.relinearization_cycles(
                    n, len(key.rows), towers
                )
            return cycles
        if job.kind in (JobKind.ADD, JobKind.SUB):
            return 2 * towers * timing.pointwise_cycles(n)
        if job.kind is JobKind.RELINEARIZE:
            return timing.relinearization_cycles(
                n, session.require_relin().num_digits, towers
            )
        if job.kind is JobKind.ROTATE:
            key = session.require_galois(_galois_exponent(session, job.steps))
            # automorphism = one copy pass per component, then key-switch
            return 2 * timing.memcpy_cycles(n) + timing.relinearization_cycles(
                n, len(key.rows), towers
            )
        # MULTIPLY / SQUARE on the model path: Eq. 4 tensor estimate
        # (+ relin when the session has a key).
        cycles = params.cofhee_tower_count * self._tensor_estimate_for(n)
        if session.relin is not None:
            cycles += timing.relinearization_cycles(
                n, session.relin.num_digits, towers
            )
        return cycles

    def _circuit_linear_cycles(self, session: Session, circuit: Circuit) -> int:
        """Pointwise-op cycles for a circuit's non-tensor steps.

        Adds and plaintext scalings are slot-wise passes over the
        ciphertext components: ct+ct touches both components of both
        operands' sum (2 passes), ct+pt only ``c0`` (1), ct*pt scales
        both components (2), and a multiply-accumulate is the scale plus
        the add (4). Tensor steps are priced separately.
        """
        params = session.params
        timing = self.workers[0].chip.timing
        pointwise = params.cofhee_tower_count * timing.pointwise_cycles(params.n)
        passes = {
            OP_ADD: 2, OP_SUB: 2, OP_ADD_CONST: 1,
            OP_MUL_CONST: 2, OP_MAC_CONST: 4,
        }
        return sum(
            passes[step.op] * pointwise
            for step in circuit.steps if step.op in passes
        )

    def _tensor_estimate_for(self, n: int) -> int:
        """Per-tower Algorithm 3 cycles from compiling the DAG (cached).

        The schedule depends only on (n, timing) — identical for every
        chip in the pool — so compile once per degree.
        """
        if n not in self._tensor_estimate:
            schedule = Scheduler(n, timing=self.workers[0].chip.timing).compile(
                ciphertext_multiply_program()
            )
            self._tensor_estimate[n] = schedule.compute_cycles
        return self._tensor_estimate[n]

    def _reference_for(self, session: Session) -> SoftwareBfv:
        """Per-tower mod-q ground truth for cross-checks (cached per digest).

        Auto-selects the batched tower engine where tower moduli fit
        (single-tower views share one precomputation) — the cross-check
        stays affordable at paper-scale degrees instead of dominating
        chip-job wall time.
        """
        if session.digest not in self._mod_q_reference:
            basis = self._chip_native_basis(session)
            if basis is None:
                basis = RnsBasis([session.params.q])
            self._mod_q_reference[session.digest] = SoftwareBfv(
                basis, session.params.n
            )
        return self._mod_q_reference[session.digest]


# ----------------------------------------------------------------------
# Software (SEAL-style CPU) baseline
# ----------------------------------------------------------------------


class SoftwareBackend(Backend):
    """Exact results through the pure-Python engine, priced like SEAL.

    Per-op latency comes from the Fig. 6-calibrated
    :class:`~repro.baselines.software.CpuCostModel` (the ciphertext tensor)
    plus the SEAL microbenchmark anchors in
    :class:`~repro.apps.costmodel.CpuAppCost` for add/ct*pt. Jobs run
    serially: the aggregate wall time is the plain sum.
    """

    name = "software"

    #: SEAL's relinearization costs roughly one more tensor's worth of NTT
    #: work at these digit counts; priced as one extra tensor.
    RELIN_TENSOR_EQUIV = 1.0

    def __init__(self, threads: int = 1):
        super().__init__()
        self.threads = threads
        self.cost = CpuCostModel()
        self._elapsed = 0.0

    def wall_seconds(self) -> float:
        return self._elapsed

    def execute_batch(
        self, batch_id: int, jobs: list[Job], registry: SessionRegistry
    ) -> BatchReport:
        batch_seconds = 0.0
        batch_start = time.perf_counter()
        candidates: list[tuple[Job, Session, Bfv]] = []
        for job in jobs:
            try:
                cand = self._defer_candidate(registry, job)
                if cand is not None:
                    # Deferred jobs wait until the batched tensor starts;
                    # _tensor_deferred marks their batch_wait + execute.
                    candidates.append(cand)
                    continue
                if job.trace.enabled:
                    # Jobs run serially: everything before this job's own
                    # start is time spent waiting on batch siblings.
                    job.trace.mark(
                        "batch_wait", batch_start, time.perf_counter()
                    )
                with job.trace.span("execute"):
                    session, result, workload = self._run_job(registry, job)
                seconds = self._job_seconds(session, job, workload)
            except Exception as exc:  # noqa: BLE001 — jobs must fail alone
                self._fail_job(job, batch_id, self.name, exc)
                continue
            job.finish(result)
            job.metrics.backend = self.name
            job.metrics.batch_id = batch_id
            job.metrics.seconds = seconds
            batch_seconds += seconds
            self.jobs_done += 1
        # Batch-aware tensors + key-switch: one engine pass covers every
        # deferred tensor, then one shared digit-decomposition fold per
        # eval-key digest relinearizes them. Modeled pricing is
        # unchanged — batching shifts the *measured* wall, not the model.
        deferred, tensor_failures = self._tensor_deferred(
            candidates, wait_from=batch_start
        )
        for job, exc in tensor_failures:
            self._fail_job(job, batch_id, self.name, exc)
        for group in self._keyswitch_groups(deferred):
            engine, relin = group[0][2], group[0][1].relin
            ks_start = time.perf_counter()
            try:
                results = engine.relinearize_many(
                    [e[3] for e in group], relin
                )
            except Exception as exc:  # noqa: BLE001 — jobs must fail alone
                for job, *_rest in group:
                    self._fail_job(job, batch_id, self.name, exc)
                continue
            ks_end = time.perf_counter()
            for (job, session, _eng, _tensor, _secs), result in zip(
                group, results
            ):
                if job.trace.enabled:
                    job.trace.mark("keyswitch", ks_start, ks_end)
                seconds = self._job_seconds(session, job, None)
                job.finish(result)
                job.metrics.backend = self.name
                job.metrics.batch_id = batch_id
                job.metrics.seconds = seconds
                job.metrics.relin_fidelity = "engine"
                batch_seconds += seconds
                self.jobs_done += 1
        self._elapsed += batch_seconds
        return BatchReport(
            batch_id=batch_id, backend=self.name, worker=0,
            jobs=len(jobs), cycles=0, seconds=batch_seconds,
        )

    def _job_seconds(
        self, session: Session, job: Job, workload: Workload | None
    ) -> float:
        params = session.params
        if workload is not None:
            return CpuAppCost().workload_seconds(workload)["total_s"]
        # Scale the SEAL anchors (measured at n = 2^12, 2 towers) to the
        # session's degree and tower count.
        anchor_scale = (params.n / 2**12) * (params.cpu_tower_count / 2)
        if job.kind is JobKind.CIRCUIT:
            # Price the op mix from the same anchors the raw ops use:
            # adds and ct*pt from the SEAL microbenchmarks, each tensor
            # step one ciphertext multiply, each relin/rotation one
            # key-switch (identical to the fused pricing when every
            # tensor carries its relin, cheaper after lazy optimization).
            counts = job.payload.op_counts()
            tensor = self.cost.ciphertext_mult_ms(params, self.threads) * 1e-3
            return (
                counts["ct_ct_adds"] * CpuAppCost.ADD_US * 1e-6 * anchor_scale
                + counts["ct_pt_mults"] * CpuAppCost.CT_PT_US * 1e-6 * anchor_scale
                + counts["ct_ct_mults"] * tensor
                + (counts["relins"] + counts["rotations"])
                * tensor * self.RELIN_TENSOR_EQUIV
            )
        if job.kind in (JobKind.ADD, JobKind.SUB):
            return CpuAppCost.ADD_US * 1e-6 * anchor_scale
        tensor = self.cost.ciphertext_mult_ms(params, self.threads) * 1e-3
        if job.kind is JobKind.RELINEARIZE:
            return tensor * self.RELIN_TENSOR_EQUIV
        if job.kind is JobKind.ROTATE:
            return tensor * self.RELIN_TENSOR_EQUIV
        # MULTIPLY / SQUARE (+ relin when the session holds a key)
        if session.relin is not None:
            return tensor * (1.0 + self.RELIN_TENSOR_EQUIV)
        return tensor


# ----------------------------------------------------------------------
# Vectorized numpy backend
# ----------------------------------------------------------------------


class FastNttBackend(Backend):
    """The numpy fast path: measured (not modeled) wall time.

    The registry's fast engine replaces the exact multiplier with
    :class:`~repro.polymath.fastntt.RnsExactMultiplier`, so every tensor
    runs through vectorized word-sized NTTs. Results stay bit-exact with
    the other backends; the latency recorded is a real measurement.
    """

    name = "fastntt"

    def __init__(self):
        super().__init__()
        self._elapsed = 0.0

    def wall_seconds(self) -> float:
        return self._elapsed

    def _engine(self, registry: SessionRegistry, session: Session) -> Bfv:
        try:
            return registry.fast_engine(session)
        except ValueError as exc:
            raise BackendError(
                f"moduli do not permit the fastntt backend for session "
                f"{session.session_id}: {exc}"
            ) from exc

    def execute_batch(
        self, batch_id: int, jobs: list[Job], registry: SessionRegistry
    ) -> BatchReport:
        batch_seconds = 0.0
        batch_start = time.perf_counter()
        candidates: list[tuple[Job, Session, Bfv]] = []
        for job in jobs:
            start = time.perf_counter()
            try:
                cand = self._defer_candidate(registry, job)
                if cand is not None:
                    # Deferred jobs wait until the batched tensor starts;
                    # _tensor_deferred marks their batch_wait + execute.
                    candidates.append(cand)
                    continue
                if job.trace.enabled:
                    job.trace.mark("batch_wait", batch_start, start)
                with job.trace.span("execute"):
                    session, result, _workload = self._run_job(registry, job)
            except Exception as exc:  # noqa: BLE001 — jobs must fail alone
                self._fail_job(job, batch_id, self.name, exc)
                continue
            seconds = time.perf_counter() - start
            job.finish(result)
            job.metrics.backend = self.name
            job.metrics.batch_id = batch_id
            job.metrics.seconds = seconds
            batch_seconds += seconds
            self.jobs_done += 1
        # Batched tensors, then one shared key-switch fold per eval-key
        # digest; each measured window is split evenly across the jobs
        # that rode it.
        deferred, tensor_failures = self._tensor_deferred(
            candidates, wait_from=batch_start
        )
        for job, exc in tensor_failures:
            self._fail_job(job, batch_id, self.name, exc)
        for group in self._keyswitch_groups(deferred):
            engine, relin = group[0][2], group[0][1].relin
            ks_start = time.perf_counter()
            try:
                results = engine.relinearize_many(
                    [e[3] for e in group], relin
                )
            except Exception as exc:  # noqa: BLE001 — jobs must fail alone
                for job, *_rest in group:
                    self._fail_job(job, batch_id, self.name, exc)
                continue
            ks_end = time.perf_counter()
            share = (ks_end - ks_start) / len(group)
            for (job, _session, _eng, _tensor, tensor_secs), result in zip(
                group, results
            ):
                if job.trace.enabled:
                    job.trace.mark("keyswitch", ks_start, ks_end)
                job.finish(result)
                job.metrics.backend = self.name
                job.metrics.batch_id = batch_id
                job.metrics.seconds = tensor_secs + share
                job.metrics.relin_fidelity = "engine"
                batch_seconds += tensor_secs + share
                self.jobs_done += 1
        self._elapsed += batch_seconds
        return BatchReport(
            batch_id=batch_id, backend=self.name, worker=0,
            jobs=len(jobs), cycles=0, seconds=batch_seconds,
        )
