"""Pluggable compute backends behind the serving layer.

One workload, three ways to run it (the TF-Encrypted "pluggable protocol"
idea mapped onto CoFHEE's evaluation platforms):

* :class:`ChipPoolBackend` — a pool of N simulated CoFHEE chips. Results
  are computed exactly (host-side scheme arithmetic, as the paper's host
  does the ``t/q`` rounding); cycle/IO accounting comes from the
  cycle-calibrated model, and — where the session's modulus fits a single
  native tower — the Algorithm 3 command stream is actually executed on
  the worker's :class:`~repro.core.driver.CofheeDriver`, with the chip's
  mod-q tensor cross-checked against the software reference.
* :class:`SoftwareBackend` — the SEAL-style CPU baseline: same exact
  results, priced by :class:`~repro.baselines.software.CpuCostModel`.
* :class:`FastNttBackend` — the vectorized numpy path: the evaluation
  engine's exact multiplier is swapped for
  :class:`~repro.polymath.fastntt.RnsExactMultiplier` and the reported
  latency is *measured* wall time, where moduli permit (enough sub-31-bit
  NTT-friendly primes for the degree — true for every supported set).

All three produce bit-identical ciphertexts, so a tenant can ask for
correctness (chip fidelity) or speed (numpy) per request and decrypt the
same answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.apps.costmodel import CofheeAppCost, CpuAppCost, Workload
from repro.apps.cryptonets import MiniCryptoNets
from repro.apps.logreg import MiniLogisticRegression
from repro.baselines.software import CpuCostModel, SoftwareBfv
from repro.bfv.params import BfvParameters
from repro.bfv.rotation import apply_galois_with_key
from repro.bfv.scheme import Bfv, Ciphertext
from repro.core.chip import ChipConfig, CoFHEE
from repro.core.driver import CofheeDriver
from repro.core.scheduler import Scheduler, ciphertext_multiply_program
from repro.polymath.primes import ntt_friendly_prime
from repro.polymath.rns import RnsBasis
from repro.service.jobs import Job, JobKind
from repro.service.registry import Session, SessionRegistry


class BackendError(RuntimeError):
    """A backend could not execute a job."""


@dataclass
class BatchReport:
    """What one dispatched batch cost."""

    batch_id: int
    backend: str
    worker: int
    jobs: int
    cycles: int
    seconds: float
    io_seconds: float = 0.0


def default_app_params(kind: JobKind) -> BfvParameters:
    """The canonical toy parameter set each mini application defaults to.

    Kept in sync with the app constructors so an app session's digest
    matches the model the worker instantiates.
    """
    if kind is JobKind.LOGREG:
        return BfvParameters.toy(n=16, log_q=140, t=ntt_friendly_prime(16, 21))
    if kind is JobKind.CRYPTONETS:
        return BfvParameters.toy(n=16, log_q=120, t=ntt_friendly_prime(16, 20))
    raise ValueError(f"{kind.value} is not an application job kind")


# ----------------------------------------------------------------------
# Shared functional execution (all backends produce identical results)
# ----------------------------------------------------------------------


def _galois_exponent(session: Session, steps: int) -> int:
    half = session.params.n // 2
    steps %= half
    if steps == 0:
        raise BackendError("rotation by 0 steps is a no-op; do not submit it")
    return pow(3, steps, 2 * session.params.n)


def execute_functional(engine: Bfv, session: Session, job: Job) -> Ciphertext:
    """Run a raw-op job's homomorphic arithmetic exactly."""
    ops = job.operands
    if job.kind is JobKind.ADD:
        return engine.add(ops[0], ops[1])
    if job.kind is JobKind.SUB:
        return engine.sub(ops[0], ops[1])
    if job.kind is JobKind.MULTIPLY:
        tensor = engine.multiply(ops[0], ops[1])
        if session.relin is not None:
            return engine.relinearize(tensor, session.relin)
        return tensor
    if job.kind is JobKind.SQUARE:
        return engine.relinearize(engine.square(ops[0]), session.require_relin())
    if job.kind is JobKind.RELINEARIZE:
        return engine.relinearize(ops[0], session.require_relin())
    if job.kind is JobKind.ROTATE:
        key = session.require_galois(_galois_exponent(session, job.steps))
        return apply_galois_with_key(engine, ops[0], key)
    raise BackendError(f"unsupported raw-op kind {job.kind.value}")


class _AppRunner:
    """Caches mini-application models per (tenant, config) and runs jobs.

    Every run is verified against the app's own plaintext reference before
    the result is returned — the serving layer never hands back an
    unchecked app answer.
    """

    def __init__(self):
        self._models: dict[tuple, object] = {}

    def run(self, job: Job) -> tuple[object, Workload]:
        payload = job.payload
        if not isinstance(payload, dict):
            raise BackendError(f"{job.kind.value} payload must be a dict")
        if job.kind is JobKind.LOGREG:
            return self._run_logreg(job, payload)
        return self._run_cryptonets(job, payload)

    def _model(self, key: tuple, build) -> object:
        if key not in self._models:
            self._models[key] = build()
        return self._models[key]

    def _run_logreg(self, job: Job, payload: dict) -> tuple[object, Workload]:
        samples = payload["samples"]
        seed = payload.get("seed", 11)
        model: MiniLogisticRegression = self._model(
            (job.tenant, job.kind, len(samples[0]), seed),
            lambda: MiniLogisticRegression(num_features=len(samples[0]), seed=seed),
        )
        before = dict(model.op_log)
        predictions = model.predict(samples)
        if predictions != model.predict_plain(samples):
            raise BackendError("logreg encrypted path diverged from plaintext")
        workload = _op_delta_workload(
            "LogisticRegression", before, model.op_log, relin_digit_bits=16
        )
        return {"predictions": predictions, "verified": True}, workload

    def _run_cryptonets(self, job: Job, payload: dict) -> tuple[object, Workload]:
        images = payload["images"]
        seed = payload.get("seed", 7)
        model: MiniCryptoNets = self._model(
            (job.tenant, job.kind, seed), lambda: MiniCryptoNets(seed=seed)
        )
        before = dict(model.op_log)
        scores = model.infer(images)
        if scores != model.infer_plain(images):
            raise BackendError("cryptonets encrypted path diverged from plaintext")
        workload = _op_delta_workload(
            "CryptoNets", before, model.op_log, relin_digit_bits=8
        )
        result = {
            "scores": scores,
            "classes": model.classify(scores),
            "verified": True,
        }
        return result, workload


def _op_delta_workload(
    name: str, before: dict, after: dict, relin_digit_bits: int
) -> Workload:
    """Turn an op-log delta into a priceable Workload."""
    return Workload(
        name=name,
        ct_ct_adds=after["ct_ct_adds"] - before["ct_ct_adds"],
        ct_pt_mults=after["ct_pt_mults"] - before["ct_pt_mults"],
        ct_ct_mults=after["ct_ct_mults"] - before["ct_ct_mults"],
        relin_digit_bits=relin_digit_bits,
        paper_cpu_seconds=0.0,
        paper_cofhee_seconds=0.0,
    )


# ----------------------------------------------------------------------
# Backend base
# ----------------------------------------------------------------------


class Backend:
    """Common bookkeeping: subclasses implement ``_execute`` per job."""

    name = "abstract"

    def __init__(self):
        self._apps = _AppRunner()
        self.jobs_done = 0

    # subclasses override -------------------------------------------------

    def wall_seconds(self) -> float:
        """Aggregate wall-clock attributed to this backend so far."""
        raise NotImplementedError

    def execute_batch(
        self, batch_id: int, jobs: list[Job], registry: SessionRegistry
    ) -> BatchReport:
        raise NotImplementedError

    # shared helpers ------------------------------------------------------

    def _engine(self, registry: SessionRegistry, session: Session) -> Bfv:
        return registry.engine(session)

    def _run_job(
        self, registry: SessionRegistry, job: Job
    ) -> tuple[Session, object, Workload | None]:
        """Functional execution; returns (session, result, app workload)."""
        session = registry.get(job.session_id)
        if job.kind.is_app:
            result, workload = self._apps.run(job)
            return session, result, workload
        for ct in job.operands:
            registry.check_compatible(session, ct)
        engine = self._engine(registry, session)
        return session, execute_functional(engine, session, job), None

    @staticmethod
    def _fail_job(job: Job, batch_id: int, name: str, exc: Exception) -> None:
        """Fault isolation: one bad job fails alone, the batch continues."""
        job.fail(str(exc))
        job.metrics.backend = name
        job.metrics.batch_id = batch_id


# ----------------------------------------------------------------------
# Chip pool
# ----------------------------------------------------------------------


@dataclass
class ChipWorker:
    """One simulated CoFHEE chip plus its host driver and accounting."""

    index: int
    chip: CoFHEE
    driver: CofheeDriver
    busy_cycles: int = 0
    io_seconds: float = 0.0
    programmed: tuple[int, int] | None = field(default=None, repr=False)

    def ensure_programmed(self, q: int, n: int) -> None:
        """Program modulus/twiddles only when they change (batch amortization)."""
        if self.programmed != (q, n):
            self.io_seconds += self.driver.program(q, n)
            self.programmed = (q, n)

    @property
    def wall_seconds(self) -> float:
        return (
            self.busy_cycles / self.chip.clock.frequency_hz + self.io_seconds
        )


class ChipPoolBackend(Backend):
    """Batches dispatched across a pool of N simulated CoFHEE chips.

    Each batch goes to the least-loaded worker; the pool's aggregate wall
    time is the makespan (max per-worker busy time), which is what shrinks
    as the pool grows. Where the session uses a single native tower, the
    Eq. 4 tensor really runs through the worker's driver (Algorithm 3
    command stream) and the chip's mod-q outputs are cross-checked against
    the software reference; otherwise cycles come from compiling the
    Algorithm 3 DAG with :class:`~repro.core.scheduler.Scheduler`.
    """

    def __init__(self, pool_size: int = 1, chip_config: ChipConfig | None = None,
                 data_fidelity: bool = True):
        super().__init__()
        if pool_size < 1:
            raise ValueError("pool needs at least one chip")
        self.name = f"chip_pool_x{pool_size}"
        self.data_fidelity = data_fidelity
        self.workers = []
        for i in range(pool_size):
            chip = CoFHEE(chip_config)
            self.workers.append(
                ChipWorker(index=i, chip=chip, driver=CofheeDriver(chip))
            )
        self._mod_q_reference: dict[bytes, SoftwareBfv] = {}
        self._tensor_estimate: dict[int, int] = {}  # n -> per-tower cycles

    # -- accounting --------------------------------------------------------

    @property
    def wall_cycles(self) -> int:
        """Pool makespan in cycles (what pool scaling reduces)."""
        return max(w.busy_cycles for w in self.workers)

    @property
    def total_cycles(self) -> int:
        return sum(w.busy_cycles for w in self.workers)

    def wall_seconds(self) -> float:
        return max(w.wall_seconds for w in self.workers)

    # -- execution ----------------------------------------------------------

    def execute_batch(
        self, batch_id: int, jobs: list[Job], registry: SessionRegistry
    ) -> BatchReport:
        worker = min(self.workers, key=lambda w: w.busy_cycles)
        batch_cycles = 0
        io_before = worker.io_seconds
        for job in jobs:
            try:
                session, result, workload = self._run_job(registry, job)
                cycles = self._job_cycles(worker, session, job, workload)
            except Exception as exc:  # noqa: BLE001 — jobs must fail alone
                self._fail_job(job, batch_id, self.name, exc)
                continue
            job.finish(result)
            job.metrics.backend = self.name
            job.metrics.worker = worker.index
            job.metrics.batch_id = batch_id
            job.metrics.cycles = cycles
            job.metrics.seconds = cycles / worker.chip.clock.frequency_hz
            batch_cycles += cycles
            self.jobs_done += 1
        worker.busy_cycles += batch_cycles
        return BatchReport(
            batch_id=batch_id,
            backend=self.name,
            worker=worker.index,
            jobs=len(jobs),
            cycles=batch_cycles,
            seconds=batch_cycles / worker.chip.clock.frequency_hz,
            io_seconds=worker.io_seconds - io_before,
        )

    # -- cycle accounting ---------------------------------------------------

    def _job_cycles(
        self, worker: ChipWorker, session: Session, job: Job,
        workload: Workload | None,
    ) -> int:
        params = session.params
        timing = worker.chip.timing
        if workload is not None:  # app-level job: price the op mix
            cost = CofheeAppCost(params, timing)
            seconds = cost.workload_seconds(workload)["total_s"]
            return round(seconds * worker.chip.clock.frequency_hz)
        n, towers = params.n, params.cofhee_tower_count
        if job.kind in (JobKind.ADD, JobKind.SUB):
            return 2 * towers * timing.pointwise_cycles(n)
        if job.kind is JobKind.RELINEARIZE:
            return timing.relinearization_cycles(
                n, session.require_relin().num_digits, towers
            )
        if job.kind is JobKind.ROTATE:
            key = session.require_galois(_galois_exponent(session, job.steps))
            # automorphism = one copy pass per component, then key-switch
            return 2 * timing.memcpy_cycles(n) + timing.relinearization_cycles(
                n, len(key.rows), towers
            )
        # MULTIPLY / SQUARE: Eq. 4 tensor (+ relin when the session has a key)
        cycles = self._tensor_cycles(worker, session, job)
        if session.relin is not None:
            cycles += timing.relinearization_cycles(
                n, session.relin.num_digits, towers
            )
        return cycles

    def _tensor_cycles(self, worker: ChipWorker, session: Session, job: Job) -> int:
        params = session.params
        basis = params.cofhee_basis
        single_native_tower = (
            basis is not None
            and len(basis) == 1
            and basis.modulus == params.q
            and (params.q - 1) % (2 * params.n) == 0
            and params.n <= worker.chip.config.poly_words
        )
        if self.data_fidelity and job.kind is JobKind.MULTIPLY and single_native_tower:
            return self._chip_tensor(worker, session, job)
        # Estimate by compiling the Algorithm 3 DAG onto the chip's buffers.
        # The schedule depends only on (n, timing) — identical for every
        # chip in the pool — so compile once per degree.
        if params.n not in self._tensor_estimate:
            schedule = Scheduler(params.n, timing=worker.chip.timing).compile(
                ciphertext_multiply_program()
            )
            self._tensor_estimate[params.n] = schedule.compute_cycles
        return params.cofhee_tower_count * self._tensor_estimate[params.n]

    def _chip_tensor(self, worker: ChipWorker, session: Session, job: Job) -> int:
        """Run Algorithm 3 on the worker's chip and cross-check the result."""
        params = session.params
        q, n = params.q, params.n
        worker.ensure_programmed(q, n)
        drv = worker.driver
        a, b = job.operands
        names = drv.buffer_names
        a0, a1, b0, b1, t0, t1 = names[:6]
        for name, poly in ((a0, a.polys[0]), (a1, a.polys[1]),
                           (b0, b.polys[0]), (b1, b.polys[1])):
            worker.io_seconds += drv.load_polynomial(name, list(poly.coeffs))
        report, (y0, y1, y2) = drv.ciphertext_multiply(a0, a1, b0, b1, t0, t1)
        chip_tensor = []
        for name in (y0, y1, y2):
            data, dt = drv.read_polynomial(name)
            worker.io_seconds += dt
            chip_tensor.append(data)
        reference = self._reference_for(session)
        expected = reference.ciphertext_multiply(
            (a.polys[0].coeffs, a.polys[1].coeffs),
            (b.polys[0].coeffs, b.polys[1].coeffs),
        )
        if chip_tensor != expected:
            raise BackendError(
                f"chip {worker.index} mod-q tensor diverged from the "
                "software reference — datapath fault"
            )
        return report.cycles

    def _reference_for(self, session: Session) -> SoftwareBfv:
        if session.digest not in self._mod_q_reference:
            self._mod_q_reference[session.digest] = SoftwareBfv(
                RnsBasis([session.params.q]), session.params.n
            )
        return self._mod_q_reference[session.digest]


# ----------------------------------------------------------------------
# Software (SEAL-style CPU) baseline
# ----------------------------------------------------------------------


class SoftwareBackend(Backend):
    """Exact results through the pure-Python engine, priced like SEAL.

    Per-op latency comes from the Fig. 6-calibrated
    :class:`~repro.baselines.software.CpuCostModel` (the ciphertext tensor)
    plus the SEAL microbenchmark anchors in
    :class:`~repro.apps.costmodel.CpuAppCost` for add/ct*pt. Jobs run
    serially: the aggregate wall time is the plain sum.
    """

    name = "software"

    #: SEAL's relinearization costs roughly one more tensor's worth of NTT
    #: work at these digit counts; priced as one extra tensor.
    RELIN_TENSOR_EQUIV = 1.0

    def __init__(self, threads: int = 1):
        super().__init__()
        self.threads = threads
        self.cost = CpuCostModel()
        self._elapsed = 0.0

    def wall_seconds(self) -> float:
        return self._elapsed

    def execute_batch(
        self, batch_id: int, jobs: list[Job], registry: SessionRegistry
    ) -> BatchReport:
        batch_seconds = 0.0
        for job in jobs:
            try:
                session, result, workload = self._run_job(registry, job)
                seconds = self._job_seconds(session, job, workload)
            except Exception as exc:  # noqa: BLE001 — jobs must fail alone
                self._fail_job(job, batch_id, self.name, exc)
                continue
            job.finish(result)
            job.metrics.backend = self.name
            job.metrics.batch_id = batch_id
            job.metrics.seconds = seconds
            batch_seconds += seconds
            self.jobs_done += 1
        self._elapsed += batch_seconds
        return BatchReport(
            batch_id=batch_id, backend=self.name, worker=0,
            jobs=len(jobs), cycles=0, seconds=batch_seconds,
        )

    def _job_seconds(
        self, session: Session, job: Job, workload: Workload | None
    ) -> float:
        params = session.params
        if workload is not None:
            return CpuAppCost().workload_seconds(workload)["total_s"]
        # Scale the SEAL anchors (measured at n = 2^12, 2 towers) to the
        # session's degree and tower count.
        anchor_scale = (params.n / 2**12) * (params.cpu_tower_count / 2)
        if job.kind in (JobKind.ADD, JobKind.SUB):
            return CpuAppCost.ADD_US * 1e-6 * anchor_scale
        tensor = self.cost.ciphertext_mult_ms(params, self.threads) * 1e-3
        if job.kind is JobKind.RELINEARIZE:
            return tensor * self.RELIN_TENSOR_EQUIV
        if job.kind is JobKind.ROTATE:
            return tensor * self.RELIN_TENSOR_EQUIV
        # MULTIPLY / SQUARE (+ relin when the session holds a key)
        if session.relin is not None:
            return tensor * (1.0 + self.RELIN_TENSOR_EQUIV)
        return tensor


# ----------------------------------------------------------------------
# Vectorized numpy backend
# ----------------------------------------------------------------------


class FastNttBackend(Backend):
    """The numpy fast path: measured (not modeled) wall time.

    The registry's fast engine replaces the exact multiplier with
    :class:`~repro.polymath.fastntt.RnsExactMultiplier`, so every tensor
    runs through vectorized word-sized NTTs. Results stay bit-exact with
    the other backends; the latency recorded is a real measurement.
    """

    name = "fastntt"

    def __init__(self):
        super().__init__()
        self._elapsed = 0.0

    def wall_seconds(self) -> float:
        return self._elapsed

    def _engine(self, registry: SessionRegistry, session: Session) -> Bfv:
        try:
            return registry.fast_engine(session)
        except ValueError as exc:
            raise BackendError(
                f"moduli do not permit the fastntt backend for session "
                f"{session.session_id}: {exc}"
            ) from exc

    def execute_batch(
        self, batch_id: int, jobs: list[Job], registry: SessionRegistry
    ) -> BatchReport:
        batch_seconds = 0.0
        for job in jobs:
            start = time.perf_counter()
            try:
                session, result, _workload = self._run_job(registry, job)
            except Exception as exc:  # noqa: BLE001 — jobs must fail alone
                self._fail_job(job, batch_id, self.name, exc)
                continue
            seconds = time.perf_counter() - start
            job.finish(result)
            job.metrics.backend = self.name
            job.metrics.batch_id = batch_id
            job.metrics.seconds = seconds
            batch_seconds += seconds
            self.jobs_done += 1
        self._elapsed += batch_seconds
        return BatchReport(
            batch_id=batch_id, backend=self.name, worker=0,
            jobs=len(jobs), cycles=0, seconds=batch_seconds,
        )
