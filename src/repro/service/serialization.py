"""Versioned, deterministic wire format for every servable FHE object.

Before this module, ciphertexts and keys existed only as in-memory Python
objects — nothing could cross a process boundary, so the library could not
be served. The format here is deliberately simple and fully deterministic
(the property tests assert bit-exact round trips):

```
message  := MAGIC(4) | VERSION(1) | TAG(1) | body | CRC32(4)
bigint   := u32 length | big-endian bytes (minimal; zero -> length 0)
poly     := packed coefficients, fixed width = ceil(bits(q)/8) each
```

Every object bound to a parameter set (ciphertexts, evaluation keys)
embeds the 32-byte **params digest** — a SHA-256 over the canonical
parameter encoding — so a receiver can reject material from an
incompatible session *before* touching any polynomial math. The CRC32
trailer catches transport corruption; out-of-range packed coefficients
are rejected by :meth:`repro.polymath.poly.PolynomialRing.unpack`.

Secret keys are deliberately **not** serializable: the serving layer's
contract is that secrets never cross the wire — clients encrypt, upload
evaluation keys, and decrypt locally.
"""

from __future__ import annotations

import hashlib
import struct
import zlib

from repro.bfv.keys import PublicKey, RelinKey
from repro.bfv.params import BfvParameters
from repro.bfv.rotation import GaloisKey
from repro.bfv.scheme import Ciphertext
from repro.polymath.poly import Polynomial, PolynomialRing
from repro.polymath.rns import RnsBasis

MAGIC = b"CFHE"
WIRE_VERSION = 1

TAG_PARAMS = 0x01
TAG_POLYNOMIAL = 0x02
TAG_CIPHERTEXT = 0x03
TAG_PUBLIC_KEY = 0x04
TAG_RELIN_KEY = 0x05
TAG_GALOIS_KEY = 0x06

_TAG_NAMES = {
    TAG_PARAMS: "params",
    TAG_POLYNOMIAL: "polynomial",
    TAG_CIPHERTEXT: "ciphertext",
    TAG_PUBLIC_KEY: "public-key",
    TAG_RELIN_KEY: "relin-key",
    TAG_GALOIS_KEY: "galois-key",
}

DIGEST_BYTES = 32


class WireFormatError(ValueError):
    """Malformed, truncated, corrupted, or unsupported wire bytes."""


class ParamsMismatchError(WireFormatError):
    """The embedded params digest does not match the receiving session."""


# ----------------------------------------------------------------------
# Primitive encoders/decoders
# ----------------------------------------------------------------------


def _u16(value: int) -> bytes:
    return value.to_bytes(2, "big")


def _u32(value: int) -> bytes:
    return value.to_bytes(4, "big")


def _bigint(value: int) -> bytes:
    if value < 0:
        raise ValueError("wire bigints are unsigned")
    raw = value.to_bytes((value.bit_length() + 7) // 8, "big")
    return _u32(len(raw)) + raw


class _Reader:
    """Cursor over a message body with strict bounds checking."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise WireFormatError(
                f"truncated message: wanted {count} bytes at offset "
                f"{self._pos}, only {len(self._data) - self._pos} left"
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def u16(self) -> int:
        return int.from_bytes(self.take(2), "big")

    def u32(self) -> int:
        return int.from_bytes(self.take(4), "big")

    def bigint(self) -> int:
        return int.from_bytes(self.take(self.u32()), "big")

    def double(self) -> float:
        return struct.unpack(">d", self.take(8))[0]

    def done(self) -> None:
        if self._pos != len(self._data):
            raise WireFormatError(
                f"{len(self._data) - self._pos} trailing bytes after message body"
            )


def _frame(tag: int, body: bytes) -> bytes:
    """Wrap a body in the header + CRC32 trailer."""
    head = MAGIC + bytes((WIRE_VERSION, tag)) + body
    return head + _u32(zlib.crc32(head))


def _unframe(data: bytes, expected_tag: int) -> _Reader:
    """Validate header/checksum and return a reader over the body."""
    if len(data) < len(MAGIC) + 2 + 4:
        raise WireFormatError(f"message too short ({len(data)} bytes)")
    if data[: len(MAGIC)] != MAGIC:
        raise WireFormatError("bad magic: not a CFHE wire message")
    version = data[len(MAGIC)]
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version} (this build speaks "
            f"{WIRE_VERSION})"
        )
    crc = int.from_bytes(data[-4:], "big")
    if zlib.crc32(data[:-4]) != crc:
        raise WireFormatError("checksum mismatch: message corrupted in transit")
    tag = data[len(MAGIC) + 1]
    if tag != expected_tag:
        raise WireFormatError(
            f"expected a {_TAG_NAMES.get(expected_tag, expected_tag)} message, "
            f"got {_TAG_NAMES.get(tag, f'tag {tag}')}"
        )
    return _Reader(data[len(MAGIC) + 2 : -4])


def peek_tag(data: bytes) -> int:
    """Return the type tag of a wire message without decoding it."""
    if len(data) < len(MAGIC) + 2 or data[: len(MAGIC)] != MAGIC:
        raise WireFormatError("not a CFHE wire message")
    return data[len(MAGIC) + 1]


# ----------------------------------------------------------------------
# Parameter sets and their digest
# ----------------------------------------------------------------------


def _params_body(params: BfvParameters) -> bytes:
    parts = [
        _u32(params.n),
        _bigint(params.q),
        _bigint(params.t),
        struct.pack(">d", params.sigma),
    ]
    for basis in (params.cpu_basis, params.cofhee_basis):
        moduli = () if basis is None else tuple(basis.moduli)
        parts.append(_u16(len(moduli)))
        parts.extend(_bigint(m) for m in moduli)
    return b"".join(parts)


def params_digest(params: BfvParameters) -> bytes:
    """SHA-256 over the canonical parameter encoding (32 bytes).

    Two parameter sets with identical ``(n, q, t, sigma)`` and RNS bases
    digest identically regardless of how the objects were constructed —
    this is the session-compatibility token the registry keys on.
    """
    return hashlib.sha256(_params_body(params)).digest()


def serialize_params(params: BfvParameters) -> bytes:
    return _frame(TAG_PARAMS, _params_body(params))


def deserialize_params(data: bytes) -> BfvParameters:
    reader = _unframe(data, TAG_PARAMS)
    n = reader.u32()
    q = reader.bigint()
    t = reader.bigint()
    sigma = reader.double()
    bases: list[RnsBasis | None] = []
    for _ in range(2):
        count = reader.u16()
        moduli = [reader.bigint() for _ in range(count)]
        bases.append(RnsBasis(moduli) if moduli else None)
    reader.done()
    return BfvParameters(
        n=n, q=q, t=t, sigma=sigma, cpu_basis=bases[0], cofhee_basis=bases[1]
    )


# ----------------------------------------------------------------------
# Polynomials
# ----------------------------------------------------------------------

#: Ring cache so repeated deserialization never rebuilds NTT contexts.
_RING_CACHE: dict[tuple[int, int], PolynomialRing] = {}


def _ring(n: int, q: int) -> PolynomialRing:
    key = (n, q)
    if key not in _RING_CACHE:
        _RING_CACHE[key] = PolynomialRing(n, q, allow_non_ntt=True)
    return _RING_CACHE[key]


def serialize_polynomial(poly: Polynomial) -> bytes:
    body = _u32(poly.ring.n) + _bigint(poly.ring.q) + poly.pack()
    return _frame(TAG_POLYNOMIAL, body)


def deserialize_polynomial(data: bytes) -> Polynomial:
    reader = _unframe(data, TAG_POLYNOMIAL)
    n = reader.u32()
    q = reader.bigint()
    if n < 2 or n & (n - 1):
        raise WireFormatError(f"invalid polynomial degree {n}")
    if q < 2:
        raise WireFormatError(f"invalid modulus {q}")
    ring = _ring(n, q)
    try:
        poly = ring.unpack(reader.take(n * ring.coeff_byte_width))
    except ValueError as exc:
        raise WireFormatError(str(exc)) from exc
    reader.done()
    return poly


def _check_digest(found: bytes, params: BfvParameters, what: str) -> None:
    expected = params_digest(params)
    if found != expected:
        raise ParamsMismatchError(
            f"{what} was produced under parameter digest {found.hex()[:16]}…, "
            f"but the session uses {expected.hex()[:16]}…"
        )


def _pack_ring_polys(polys, params: BfvParameters) -> bytes:
    for p in polys:
        if p.ring.n != params.n or p.ring.q != params.q:
            raise ValueError(
                f"polynomial ring {p.ring} does not match params "
                f"(n={params.n}, q={params.q})"
            )
    return b"".join(p.pack() for p in polys)


def _unpack_ring_polys(reader: _Reader, count: int, params: BfvParameters):
    ring = _ring(params.n, params.q)
    width = params.n * ring.coeff_byte_width
    try:
        return [ring.unpack(reader.take(width)) for _ in range(count)]
    except ValueError as exc:
        raise WireFormatError(str(exc)) from exc


# ----------------------------------------------------------------------
# Ciphertexts
# ----------------------------------------------------------------------


def serialize_ciphertext(ct: Ciphertext) -> bytes:
    body = (
        params_digest(ct.params)
        + _u16(ct.size)
        + _pack_ring_polys(ct.polys, ct.params)
    )
    return _frame(TAG_CIPHERTEXT, body)


def deserialize_ciphertext(data: bytes, params: BfvParameters) -> Ciphertext:
    reader = _unframe(data, TAG_CIPHERTEXT)
    _check_digest(reader.take(DIGEST_BYTES), params, "ciphertext")
    size = reader.u16()
    if size < 1:
        raise WireFormatError("ciphertext must have at least one component")
    polys = _unpack_ring_polys(reader, size, params)
    reader.done()
    return Ciphertext(polys, params)


# ----------------------------------------------------------------------
# Evaluation keys
# ----------------------------------------------------------------------


def serialize_public_key(key: PublicKey, params: BfvParameters) -> bytes:
    body = params_digest(params) + _pack_ring_polys((key.kp1, key.kp2), params)
    return _frame(TAG_PUBLIC_KEY, body)


def deserialize_public_key(data: bytes, params: BfvParameters) -> PublicKey:
    reader = _unframe(data, TAG_PUBLIC_KEY)
    _check_digest(reader.take(DIGEST_BYTES), params, "public key")
    kp1, kp2 = _unpack_ring_polys(reader, 2, params)
    reader.done()
    return PublicKey(kp1=kp1, kp2=kp2)


def _key_rows_body(rows, params: BfvParameters) -> bytes:
    parts = [_u16(len(rows))]
    for b_i, a_i in rows:
        parts.append(_pack_ring_polys((b_i, a_i), params))
    return b"".join(parts)


def _read_key_rows(reader: _Reader, params: BfvParameters):
    count = reader.u16()
    if count < 1:
        raise WireFormatError("key-switching key needs at least one row")
    rows = []
    for _ in range(count):
        b_i, a_i = _unpack_ring_polys(reader, 2, params)
        rows.append((b_i, a_i))
    return tuple(rows)


def serialize_relin_key(key: RelinKey, params: BfvParameters) -> bytes:
    body = (
        params_digest(params)
        + _u16(key.digit_bits)
        + _key_rows_body(key.rows, params)
    )
    return _frame(TAG_RELIN_KEY, body)


def deserialize_relin_key(data: bytes, params: BfvParameters) -> RelinKey:
    reader = _unframe(data, TAG_RELIN_KEY)
    _check_digest(reader.take(DIGEST_BYTES), params, "relin key")
    digit_bits = reader.u16()
    rows = _read_key_rows(reader, params)
    reader.done()
    return RelinKey(rows=rows, digit_bits=digit_bits)


def serialize_galois_key(key: GaloisKey, params: BfvParameters) -> bytes:
    body = (
        params_digest(params)
        + _u32(key.exponent)
        + _u16(key.digit_bits)
        + _key_rows_body(key.rows, params)
    )
    return _frame(TAG_GALOIS_KEY, body)


def deserialize_galois_key(data: bytes, params: BfvParameters) -> GaloisKey:
    reader = _unframe(data, TAG_GALOIS_KEY)
    _check_digest(reader.take(DIGEST_BYTES), params, "galois key")
    exponent = reader.u32()
    digit_bits = reader.u16()
    rows = _read_key_rows(reader, params)
    reader.done()
    return GaloisKey(exponent=exponent, rows=rows, digit_bits=digit_bits)
