"""Versioned, deterministic wire format for every servable FHE object.

Before this module, ciphertexts and keys existed only as in-memory Python
objects — nothing could cross a process boundary, so the library could not
be served. The format here is deliberately simple and fully deterministic
(the property tests assert bit-exact round trips):

```
message  := MAGIC(4) | VERSION(1) | TAG(1) | body | CRC32(4)
bigint   := u32 length | big-endian bytes (minimal; zero -> length 0)
poly     := packed coefficients, fixed width = ceil(bits(q)/8) each
```

Every object bound to a parameter set (ciphertexts, evaluation keys)
embeds the 32-byte **params digest** — a SHA-256 over the canonical
parameter encoding — so a receiver can reject material from an
incompatible session *before* touching any polynomial math. The CRC32
trailer catches transport corruption; out-of-range packed coefficients
are rejected by :meth:`repro.polymath.poly.PolynomialRing.unpack`.

Secret keys are deliberately **not** serializable: the serving layer's
contract is that secrets never cross the wire — clients encrypt, upload
evaluation keys, and decrypt locally.

The **control plane** of the async transport speaks the same envelope:
OPEN-SESSION/SESSION, SUBMIT/SUBMIT-CIRCUIT/STATUS, RESULT, EVENT, and
ERROR messages (tags 0x10-0x1A) carry job routing fields plus nested
data-plane blobs (each itself a framed message), all under the one
MAGIC/VERSION/CRC32 scheme — a bit flipped anywhere in a control frame
is caught by the same checksum that protects a ciphertext.

**App circuits** (tag 0x07) encode a whole multi-step encrypted program —
named ciphertext inputs, a plaintext constant table, an SSA step list,
and named outputs (see :mod:`repro.service.circuits`); their results
travel back as a named-output map (tag 0x08). The byte-for-byte layout
of every message lives in ``docs/wire-protocol.md``.
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from dataclasses import dataclass

from repro.bfv.keys import PublicKey, RelinKey
from repro.bfv.params import BfvParameters
from repro.bfv.rotation import GaloisKey
from repro.bfv.scheme import Ciphertext
from repro.polymath.poly import Polynomial, PolynomialRing
from repro.polymath.rns import RnsBasis
from repro.service.circuits import (
    CIRCUIT_VERSION,
    Circuit,
    CircuitConst,
    CircuitError,
    CircuitStep,
    CONST_PLAIN,
    CONST_SCALAR,
    OP_SPECS,
    V1_OPS,
    wire_version,
)

MAGIC = b"CFHE"
WIRE_VERSION = 1

TAG_PARAMS = 0x01
TAG_POLYNOMIAL = 0x02
TAG_CIPHERTEXT = 0x03
TAG_PUBLIC_KEY = 0x04
TAG_RELIN_KEY = 0x05
TAG_GALOIS_KEY = 0x06
TAG_CIRCUIT = 0x07
TAG_CIRCUIT_OUTPUTS = 0x08

# Transport control plane (repro.service.transport). Client -> server:
# OPEN_SESSION, SUBMIT, SUBMIT_CIRCUIT, and STATUS/RESULT queries;
# server -> client: SESSION, STATUS, RESULT replies (echoing the request
# id), unsolicited EVENT pushes (completion callbacks), and ERROR.
TAG_OPEN_SESSION = 0x10
TAG_SESSION = 0x11
TAG_SUBMIT = 0x12
TAG_STATUS = 0x13
TAG_RESULT = 0x14
TAG_EVENT = 0x15
TAG_ERROR = 0x16
TAG_SUBMIT_CIRCUIT = 0x17
TAG_STATS = 0x18
TAG_TRACE = 0x19
TAG_ADMIN = 0x1A

# Fleet worker-control plane (repro.service.fleet). Orchestrator ->
# worker: WORKER_KEYS (replicate a session's params + evaluation keys on
# first use), WORKER_JOB (one routed job), WORKER_FAULTS (re-arm the
# deterministic fault plan); worker -> orchestrator: WORKER_RESULT and
# WORKER_HEARTBEAT (liveness beacon; seq 1 doubles as the hello).
TAG_WORKER_KEYS = 0x20
TAG_WORKER_JOB = 0x21
TAG_WORKER_RESULT = 0x22
TAG_WORKER_HEARTBEAT = 0x23
TAG_WORKER_FAULTS = 0x24

_TAG_NAMES = {
    TAG_PARAMS: "params",
    TAG_POLYNOMIAL: "polynomial",
    TAG_CIPHERTEXT: "ciphertext",
    TAG_PUBLIC_KEY: "public-key",
    TAG_RELIN_KEY: "relin-key",
    TAG_GALOIS_KEY: "galois-key",
    TAG_CIRCUIT: "circuit",
    TAG_CIRCUIT_OUTPUTS: "circuit-outputs",
    TAG_OPEN_SESSION: "open-session",
    TAG_SESSION: "session",
    TAG_SUBMIT: "submit",
    TAG_STATUS: "status",
    TAG_RESULT: "result",
    TAG_EVENT: "event",
    TAG_ERROR: "error",
    TAG_SUBMIT_CIRCUIT: "submit-circuit",
    TAG_STATS: "stats",
    TAG_TRACE: "trace",
    TAG_ADMIN: "admin",
    TAG_WORKER_KEYS: "worker-keys",
    TAG_WORKER_JOB: "worker-job",
    TAG_WORKER_RESULT: "worker-result",
    TAG_WORKER_HEARTBEAT: "worker-heartbeat",
    TAG_WORKER_FAULTS: "worker-faults",
}

DIGEST_BYTES = 32


class WireFormatError(ValueError):
    """Malformed, truncated, corrupted, or unsupported wire bytes."""


class ParamsMismatchError(WireFormatError):
    """The embedded params digest does not match the receiving session."""


# ----------------------------------------------------------------------
# Primitive encoders/decoders
# ----------------------------------------------------------------------


def _u16(value: int) -> bytes:
    return value.to_bytes(2, "big")


def _u32(value: int) -> bytes:
    return value.to_bytes(4, "big")


def _bigint(value: int) -> bytes:
    if value < 0:
        raise ValueError("wire bigints are unsigned")
    raw = value.to_bytes((value.bit_length() + 7) // 8, "big")
    return _u32(len(raw)) + raw


def _i64(value: int) -> bytes:
    return struct.pack(">q", value)


def _str(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ValueError(f"wire string too long ({len(raw)} bytes)")
    return _u16(len(raw)) + raw


def _blob(data: bytes) -> bytes:
    return _u32(len(data)) + data


class _Reader:
    """Cursor over a message body with strict bounds checking."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise WireFormatError(
                f"truncated message: wanted {count} bytes at offset "
                f"{self._pos}, only {len(self._data) - self._pos} left"
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def u16(self) -> int:
        return int.from_bytes(self.take(2), "big")

    def u32(self) -> int:
        return int.from_bytes(self.take(4), "big")

    def bigint(self) -> int:
        return int.from_bytes(self.take(self.u32()), "big")

    def double(self) -> float:
        return struct.unpack(">d", self.take(8))[0]

    def u8(self) -> int:
        return self.take(1)[0]

    def i64(self) -> int:
        return struct.unpack(">q", self.take(8))[0]

    def string(self) -> str:
        raw = self.take(self.u16())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"invalid UTF-8 in wire string: {exc}") from exc

    def blob(self) -> bytes:
        return self.take(self.u32())

    def done(self) -> None:
        if self._pos != len(self._data):
            raise WireFormatError(
                f"{len(self._data) - self._pos} trailing bytes after message body"
            )


def _frame(tag: int, body: bytes) -> bytes:
    """Wrap a body in the header + CRC32 trailer."""
    head = MAGIC + bytes((WIRE_VERSION, tag)) + body
    return head + _u32(zlib.crc32(head))


def _unframe(data: bytes, expected_tag: int) -> _Reader:
    """Validate header/checksum and return a reader over the body."""
    if len(data) < len(MAGIC) + 2 + 4:
        raise WireFormatError(f"message too short ({len(data)} bytes)")
    if data[: len(MAGIC)] != MAGIC:
        raise WireFormatError("bad magic: not a CFHE wire message")
    version = data[len(MAGIC)]
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version} (this build speaks "
            f"{WIRE_VERSION})"
        )
    crc = int.from_bytes(data[-4:], "big")
    if zlib.crc32(data[:-4]) != crc:
        raise WireFormatError("checksum mismatch: message corrupted in transit")
    tag = data[len(MAGIC) + 1]
    if tag != expected_tag:
        raise WireFormatError(
            f"expected a {_TAG_NAMES.get(expected_tag, expected_tag)} message, "
            f"got {_TAG_NAMES.get(tag, f'tag {tag}')}"
        )
    return _Reader(data[len(MAGIC) + 2 : -4])


def peek_tag(data: bytes) -> int:
    """Return the type tag of a wire message without decoding it."""
    if len(data) < len(MAGIC) + 2 or data[: len(MAGIC)] != MAGIC:
        raise WireFormatError("not a CFHE wire message")
    return data[len(MAGIC) + 1]


def verify_frame(data: bytes) -> int:
    """Integrity-check a framed message without decoding its body.

    Validates the magic, wire version, and CRC32 trailer, and returns
    the type tag. The fleet orchestrator runs this over every worker
    reply payload so a corrupted result is requeued instead of being
    handed to a client that would only discover the damage on decode.
    """
    if len(data) < len(MAGIC) + 2 + 4:
        raise WireFormatError(f"message too short ({len(data)} bytes)")
    if data[: len(MAGIC)] != MAGIC:
        raise WireFormatError("bad magic: not a CFHE wire message")
    version = data[len(MAGIC)]
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version} (this build speaks "
            f"{WIRE_VERSION})"
        )
    if zlib.crc32(data[:-4]) != int.from_bytes(data[-4:], "big"):
        raise WireFormatError("checksum mismatch: message corrupted in transit")
    return data[len(MAGIC) + 1]


# ----------------------------------------------------------------------
# Parameter sets and their digest
# ----------------------------------------------------------------------


def _params_body(params: BfvParameters) -> bytes:
    parts = [
        _u32(params.n),
        _bigint(params.q),
        _bigint(params.t),
        struct.pack(">d", params.sigma),
    ]
    for basis in (params.cpu_basis, params.cofhee_basis):
        moduli = () if basis is None else tuple(basis.moduli)
        parts.append(_u16(len(moduli)))
        parts.extend(_bigint(m) for m in moduli)
    return b"".join(parts)


def params_digest(params: BfvParameters) -> bytes:
    """SHA-256 over the canonical parameter encoding (32 bytes).

    Two parameter sets with identical ``(n, q, t, sigma)`` and RNS bases
    digest identically regardless of how the objects were constructed —
    this is the session-compatibility token the registry keys on.
    """
    return hashlib.sha256(_params_body(params)).digest()


def serialize_params(params: BfvParameters) -> bytes:
    return _frame(TAG_PARAMS, _params_body(params))


def deserialize_params(data: bytes) -> BfvParameters:
    reader = _unframe(data, TAG_PARAMS)
    n = reader.u32()
    q = reader.bigint()
    t = reader.bigint()
    sigma = reader.double()
    bases: list[RnsBasis | None] = []
    for _ in range(2):
        count = reader.u16()
        moduli = [reader.bigint() for _ in range(count)]
        bases.append(RnsBasis(moduli) if moduli else None)
    reader.done()
    return BfvParameters(
        n=n, q=q, t=t, sigma=sigma, cpu_basis=bases[0], cofhee_basis=bases[1]
    )


# ----------------------------------------------------------------------
# Polynomials
# ----------------------------------------------------------------------

#: Ring cache so repeated deserialization never rebuilds NTT contexts.
_RING_CACHE: dict[tuple[int, int], PolynomialRing] = {}


def _ring(n: int, q: int) -> PolynomialRing:
    key = (n, q)
    if key not in _RING_CACHE:
        _RING_CACHE[key] = PolynomialRing(n, q, allow_non_ntt=True)
    return _RING_CACHE[key]


def serialize_polynomial(poly: Polynomial) -> bytes:
    body = _u32(poly.ring.n) + _bigint(poly.ring.q) + poly.pack()
    return _frame(TAG_POLYNOMIAL, body)


def deserialize_polynomial(data: bytes) -> Polynomial:
    reader = _unframe(data, TAG_POLYNOMIAL)
    n = reader.u32()
    q = reader.bigint()
    if n < 2 or n & (n - 1):
        raise WireFormatError(f"invalid polynomial degree {n}")
    if q < 2:
        raise WireFormatError(f"invalid modulus {q}")
    ring = _ring(n, q)
    try:
        poly = ring.unpack(reader.take(n * ring.coeff_byte_width))
    except ValueError as exc:
        raise WireFormatError(str(exc)) from exc
    reader.done()
    return poly


def _check_digest(found: bytes, params: BfvParameters, what: str) -> None:
    expected = params_digest(params)
    if found != expected:
        raise ParamsMismatchError(
            f"{what} was produced under parameter digest {found.hex()[:16]}…, "
            f"but the session uses {expected.hex()[:16]}…"
        )


def _pack_ring_polys(polys, params: BfvParameters) -> bytes:
    for p in polys:
        if p.ring.n != params.n or p.ring.q != params.q:
            raise ValueError(
                f"polynomial ring {p.ring} does not match params "
                f"(n={params.n}, q={params.q})"
            )
    return b"".join(p.pack() for p in polys)


def _unpack_ring_polys(reader: _Reader, count: int, params: BfvParameters):
    ring = _ring(params.n, params.q)
    width = params.n * ring.coeff_byte_width
    try:
        return [ring.unpack(reader.take(width)) for _ in range(count)]
    except ValueError as exc:
        raise WireFormatError(str(exc)) from exc


# ----------------------------------------------------------------------
# Ciphertexts
# ----------------------------------------------------------------------


def serialize_ciphertext(ct: Ciphertext) -> bytes:
    body = (
        params_digest(ct.params)
        + _u16(ct.size)
        + _pack_ring_polys(ct.polys, ct.params)
    )
    return _frame(TAG_CIPHERTEXT, body)


def deserialize_ciphertext(data: bytes, params: BfvParameters) -> Ciphertext:
    reader = _unframe(data, TAG_CIPHERTEXT)
    _check_digest(reader.take(DIGEST_BYTES), params, "ciphertext")
    size = reader.u16()
    if size < 1:
        raise WireFormatError("ciphertext must have at least one component")
    polys = _unpack_ring_polys(reader, size, params)
    reader.done()
    return Ciphertext(polys, params)


# ----------------------------------------------------------------------
# Evaluation keys
# ----------------------------------------------------------------------


def serialize_public_key(key: PublicKey, params: BfvParameters) -> bytes:
    body = params_digest(params) + _pack_ring_polys((key.kp1, key.kp2), params)
    return _frame(TAG_PUBLIC_KEY, body)


def deserialize_public_key(data: bytes, params: BfvParameters) -> PublicKey:
    reader = _unframe(data, TAG_PUBLIC_KEY)
    _check_digest(reader.take(DIGEST_BYTES), params, "public key")
    kp1, kp2 = _unpack_ring_polys(reader, 2, params)
    reader.done()
    return PublicKey(kp1=kp1, kp2=kp2)


def _key_rows_body(rows, params: BfvParameters) -> bytes:
    parts = [_u16(len(rows))]
    for b_i, a_i in rows:
        parts.append(_pack_ring_polys((b_i, a_i), params))
    return b"".join(parts)


def _read_key_rows(reader: _Reader, params: BfvParameters):
    count = reader.u16()
    if count < 1:
        raise WireFormatError("key-switching key needs at least one row")
    rows = []
    for _ in range(count):
        b_i, a_i = _unpack_ring_polys(reader, 2, params)
        rows.append((b_i, a_i))
    return tuple(rows)


def serialize_relin_key(key: RelinKey, params: BfvParameters) -> bytes:
    body = (
        params_digest(params)
        + _u16(key.digit_bits)
        + _key_rows_body(key.rows, params)
    )
    return _frame(TAG_RELIN_KEY, body)


def deserialize_relin_key(data: bytes, params: BfvParameters) -> RelinKey:
    reader = _unframe(data, TAG_RELIN_KEY)
    _check_digest(reader.take(DIGEST_BYTES), params, "relin key")
    digit_bits = reader.u16()
    rows = _read_key_rows(reader, params)
    reader.done()
    return RelinKey(rows=rows, digit_bits=digit_bits)


def serialize_galois_key(key: GaloisKey, params: BfvParameters) -> bytes:
    body = (
        params_digest(params)
        + _u32(key.exponent)
        + _u16(key.digit_bits)
        + _key_rows_body(key.rows, params)
    )
    return _frame(TAG_GALOIS_KEY, body)


def deserialize_galois_key(data: bytes, params: BfvParameters) -> GaloisKey:
    reader = _unframe(data, TAG_GALOIS_KEY)
    _check_digest(reader.take(DIGEST_BYTES), params, "galois key")
    exponent = reader.u32()
    digit_bits = reader.u16()
    rows = _read_key_rows(reader, params)
    reader.done()
    return GaloisKey(exponent=exponent, rows=rows, digit_bits=digit_bits)


# ----------------------------------------------------------------------
# App circuits (multi-step encrypted programs; repro.service.circuits)
# ----------------------------------------------------------------------
#
# Layout (body of a TAG_CIRCUIT message; full spec in
# docs/wire-protocol.md):
#
#   u8  circuit_version        (1 or 2; anything else -> rejected)
#   str name
#   u16 num_inputs  | str * inputs
#   u16 num_consts  | per const: u8 kind
#                     kind 0 (scalar): i64 value
#                     kind 1 (plain):  u32 num_coeffs | bigint * coeffs
#   u16 num_steps   | per step:  u8 op | u16 * args (arity fixed per op;
#                     signed "s" immediates travel as two's-complement u16)
#   u16 num_outputs | per output: str name | u16 register
#
# Encoders emit the lowest version whose op set covers the circuit
# (version 1 for the original seven ops, version 2 once rotations or
# split tensor steps appear), so old circuits keep their exact bytes —
# and content addresses — across the format bump. Decoders accept both
# versions but reject version-2 opcodes inside a version-1 body.
#
# Structural validation (register bounds, op codes, argument layouts)
# is the same validate_circuit() the in-memory constructor runs, so a
# malformed description is rejected identically however it arrives.


def serialize_circuit(circuit: Circuit) -> bytes:
    # Register/constant/output counts are u16-representable by
    # construction: validate_circuit (run by the Circuit constructor)
    # bounds them all at 65535.
    parts = [bytes((wire_version(circuit),)), _str(circuit.name),
             _u16(len(circuit.inputs))]
    parts.extend(_str(name) for name in circuit.inputs)
    parts.append(_u16(len(circuit.consts)))
    for const in circuit.consts:
        parts.append(bytes((const.kind,)))
        if const.kind == CONST_SCALAR:
            parts.append(_i64(const.scalar))
        else:
            parts.append(_u32(len(const.coeffs)))
            parts.extend(_bigint(c) for c in const.coeffs)
    parts.append(_u16(len(circuit.steps)))
    for step in circuit.steps:
        parts.append(bytes((step.op,)))
        layout = OP_SPECS[step.op][1]
        parts.extend(
            _u16(arg & 0xFFFF if role == "s" else arg)
            for arg, role in zip(step.args, layout)
        )
    parts.append(_u16(len(circuit.outputs)))
    for name, reg in circuit.outputs:
        parts.append(_str(name) + _u16(reg))
    return _frame(TAG_CIRCUIT, b"".join(parts))


def deserialize_circuit(data: bytes) -> Circuit:
    reader = _unframe(data, TAG_CIRCUIT)
    version = reader.u8()
    if not 1 <= version <= CIRCUIT_VERSION:
        raise WireFormatError(
            f"unsupported circuit encoding version {version} (this build "
            f"speaks versions 1..{CIRCUIT_VERSION})"
        )
    name = reader.string()
    inputs = tuple(reader.string() for _ in range(reader.u16()))
    consts = []
    for _ in range(reader.u16()):
        kind = reader.u8()
        if kind == CONST_SCALAR:
            consts.append(CircuitConst(kind=kind, scalar=reader.i64()))
        elif kind == CONST_PLAIN:
            coeffs = tuple(reader.bigint() for _ in range(reader.u32()))
            consts.append(CircuitConst(kind=kind, coeffs=coeffs))
        else:
            raise WireFormatError(f"unknown circuit constant kind {kind}")
    steps = []
    for _ in range(reader.u16()):
        op = reader.u8()
        spec = OP_SPECS.get(op)
        if spec is None:
            raise WireFormatError(f"unknown circuit op code 0x{op:02x}")
        if version == 1 and op not in V1_OPS:
            raise WireFormatError(
                f"circuit op code 0x{op:02x} ({spec[0]}) needs encoding "
                "version 2, but the body declares version 1"
            )
        args = []
        for role in spec[1]:
            raw = reader.u16()
            if role == "s" and raw >= 0x8000:  # two's-complement immediate
                raw -= 0x10000
            args.append(raw)
        steps.append(CircuitStep(op=op, args=tuple(args)))
    outputs = tuple(
        (reader.string(), reader.u16()) for _ in range(reader.u16())
    )
    reader.done()
    try:
        return Circuit(
            name=name, inputs=inputs, consts=tuple(consts),
            steps=tuple(steps), outputs=outputs,
        )
    except CircuitError as exc:
        raise WireFormatError(f"invalid circuit: {exc}") from exc


def serialize_circuit_outputs(outputs: dict[str, Ciphertext]) -> bytes:
    """Encode a circuit's named result map (each value a framed ciphertext)."""
    if len(outputs) > 0xFFFF:
        raise ValueError(f"too many circuit outputs ({len(outputs)})")
    parts = [_u16(len(outputs))]
    for name, ct in outputs.items():
        parts.append(_str(name) + _blob(serialize_ciphertext(ct)))
    return _frame(TAG_CIRCUIT_OUTPUTS, b"".join(parts))


def deserialize_circuit_outputs(
    data: bytes, params: BfvParameters
) -> dict[str, Ciphertext]:
    reader = _unframe(data, TAG_CIRCUIT_OUTPUTS)
    outputs: dict[str, Ciphertext] = {}
    for _ in range(reader.u16()):
        name = reader.string()
        if name in outputs:
            raise WireFormatError(f"duplicate circuit output {name!r}")
        outputs[name] = deserialize_ciphertext(reader.blob(), params)
    reader.done()
    return outputs


# ----------------------------------------------------------------------
# Transport control plane (SUBMIT/STATUS/RESULT/EVENT + session setup)
# ----------------------------------------------------------------------
#
# Requests carry a client-chosen ``request_id`` that the matching reply
# echoes, so one connection can pipeline many requests. Nested blobs are
# themselves framed data-plane messages (params, keys, ciphertexts) — the
# receiver re-validates them with their own CRC after the control frame's.


@dataclass(frozen=True)
class OpenSessionMsg:
    """Client request: bind a tenant to a parameter set plus keys.

    ``token`` is the tenant's shared-secret credential. A server started
    with a tenant table rejects unknown tenants or wrong tokens with a
    typed ``auth`` error before registering anything; a server without a
    table ignores the field (the default, back-compatible posture).
    """

    request_id: int
    tenant: str
    params: bytes  # framed params message
    public_key: bytes | None = None
    relin_key: bytes | None = None
    galois_keys: tuple[bytes, ...] = ()
    token: str = ""


@dataclass(frozen=True)
class SessionMsg:
    """Server reply to OPEN_SESSION: the session id to submit under."""

    request_id: int
    session_id: str


@dataclass(frozen=True)
class SubmitMsg:
    """Client request: queue one raw-op job.

    ``subscribe`` asks the server to push an :class:`EventMsg` the moment
    the job completes — the async completion callback; no polling needed.
    ``deadline`` is an optional budget in seconds, relative to server
    receipt (``0.0`` = none): a job still unfinished past it is shed or
    reaped and fails with a typed ``deadline`` error.
    """

    request_id: int
    session_id: str
    kind: str
    operands: tuple[bytes, ...]  # framed ciphertext messages
    steps: int = 0
    backend: str = ""
    subscribe: bool = True
    deadline: float = 0.0


@dataclass(frozen=True)
class SubmitCircuitMsg:
    """Client request: queue one app-circuit job.

    ``circuit`` is a framed :data:`TAG_CIRCUIT` message and ``operands``
    are framed ciphertexts bound positionally to the circuit's named
    inputs. The completion payload (EVENT or RESULT) is a framed
    :data:`TAG_CIRCUIT_OUTPUTS` message carrying only the named outputs.
    """

    request_id: int
    session_id: str
    circuit: bytes
    operands: tuple[bytes, ...]
    backend: str = ""
    subscribe: bool = True
    deadline: float = 0.0


@dataclass(frozen=True)
class StatusMsg:
    """Status query (client -> server, ``status == ""``) or report.

    As the SUBMIT reply it carries the assigned ``job_id`` plus the
    submit-time status (``done`` for a cache hit, else ``queued``).
    """

    request_id: int
    job_id: str
    status: str = ""
    error: str = ""


@dataclass(frozen=True)
class ResultMsg:
    """Result request (client -> server, empty payload) or delivery.

    The server answers a RESULT request once the job has finished —
    asynchronously, without blocking the connection's other traffic.
    """

    request_id: int
    job_id: str
    status: str = ""
    payload: bytes = b""  # framed ciphertext message when status == done
    error: str = ""


@dataclass(frozen=True)
class EventMsg:
    """Unsolicited completion push for a subscribed job."""

    job_id: str
    status: str
    payload: bytes = b""  # framed ciphertext message when status == done
    error: str = ""


@dataclass(frozen=True)
class ErrorMsg:
    """Request failure (echoes the request id) or, with ``request_id
    0``, a connection-level protocol error before the link closes.

    ``code`` is the machine-readable rejection class (``"auth"``,
    ``"quota"``, ``"deadline"``, ``"unavailable"``; empty = untyped) —
    see :mod:`repro.service.errors` for which codes are retryable.
    """

    request_id: int
    message: str
    code: str = ""


@dataclass(frozen=True)
class AdminMsg:
    """Fleet administration request or its echo reply.

    ``command`` is ``"grow"``/``"shrink"`` (``value`` = worker count to
    add/retire, default 1) or ``"resize"`` (``value`` = target fleet
    size). The reply echoes the tag with ``value`` set to the fleet size
    after the operation and ``result`` as a short human-readable note.
    """

    request_id: int
    command: str = ""
    value: int = 0
    result: str = ""


def _optional_blob(data: bytes | None) -> bytes:
    if data is None:
        return bytes((0,))
    return bytes((1,)) + _blob(data)


def _read_optional_blob(reader: _Reader) -> bytes | None:
    return reader.blob() if reader.u8() else None


def encode_open_session(msg: OpenSessionMsg) -> bytes:
    body = [
        _u32(msg.request_id),
        _str(msg.tenant),
        _str(msg.token),
        _blob(msg.params),
        _optional_blob(msg.public_key),
        _optional_blob(msg.relin_key),
        _u16(len(msg.galois_keys)),
    ]
    body.extend(_blob(g) for g in msg.galois_keys)
    return _frame(TAG_OPEN_SESSION, b"".join(body))


def decode_open_session(data: bytes) -> OpenSessionMsg:
    reader = _unframe(data, TAG_OPEN_SESSION)
    request_id = reader.u32()
    tenant = reader.string()
    token = reader.string()
    params = reader.blob()
    public_key = _read_optional_blob(reader)
    relin_key = _read_optional_blob(reader)
    galois = tuple(reader.blob() for _ in range(reader.u16()))
    reader.done()
    return OpenSessionMsg(
        request_id=request_id, tenant=tenant, params=params,
        public_key=public_key, relin_key=relin_key, galois_keys=galois,
        token=token,
    )


def encode_session(msg: SessionMsg) -> bytes:
    return _frame(TAG_SESSION, _u32(msg.request_id) + _str(msg.session_id))


def decode_session(data: bytes) -> SessionMsg:
    reader = _unframe(data, TAG_SESSION)
    msg = SessionMsg(request_id=reader.u32(), session_id=reader.string())
    reader.done()
    return msg


def encode_submit(msg: SubmitMsg) -> bytes:
    if len(msg.operands) > 0xFFFF:
        raise ValueError(f"too many operands ({len(msg.operands)})")
    body = [
        _u32(msg.request_id),
        _str(msg.session_id),
        _str(msg.kind),
        _i64(msg.steps),
        _str(msg.backend),
        bytes((1 if msg.subscribe else 0,)),
        struct.pack(">d", msg.deadline),
        _u16(len(msg.operands)),
    ]
    body.extend(_blob(op) for op in msg.operands)
    return _frame(TAG_SUBMIT, b"".join(body))


def decode_submit(data: bytes) -> SubmitMsg:
    reader = _unframe(data, TAG_SUBMIT)
    request_id = reader.u32()
    session_id = reader.string()
    kind = reader.string()
    steps = reader.i64()
    backend = reader.string()
    subscribe = bool(reader.u8())
    deadline = reader.double()
    operands = tuple(reader.blob() for _ in range(reader.u16()))
    reader.done()
    return SubmitMsg(
        request_id=request_id, session_id=session_id, kind=kind,
        operands=operands, steps=steps, backend=backend, subscribe=subscribe,
        deadline=deadline,
    )


def encode_submit_circuit(msg: SubmitCircuitMsg) -> bytes:
    if len(msg.operands) > 0xFFFF:
        raise ValueError(f"too many operands ({len(msg.operands)})")
    body = [
        _u32(msg.request_id),
        _str(msg.session_id),
        _blob(msg.circuit),
        _str(msg.backend),
        bytes((1 if msg.subscribe else 0,)),
        struct.pack(">d", msg.deadline),
        _u16(len(msg.operands)),
    ]
    body.extend(_blob(op) for op in msg.operands)
    return _frame(TAG_SUBMIT_CIRCUIT, b"".join(body))


def decode_submit_circuit(data: bytes) -> SubmitCircuitMsg:
    reader = _unframe(data, TAG_SUBMIT_CIRCUIT)
    request_id = reader.u32()
    session_id = reader.string()
    circuit = reader.blob()
    backend = reader.string()
    subscribe = bool(reader.u8())
    deadline = reader.double()
    operands = tuple(reader.blob() for _ in range(reader.u16()))
    reader.done()
    return SubmitCircuitMsg(
        request_id=request_id, session_id=session_id, circuit=circuit,
        operands=operands, backend=backend, subscribe=subscribe,
        deadline=deadline,
    )


def encode_status(msg: StatusMsg) -> bytes:
    body = (
        _u32(msg.request_id) + _str(msg.job_id) + _str(msg.status)
        + _str(msg.error)
    )
    return _frame(TAG_STATUS, body)


def decode_status(data: bytes) -> StatusMsg:
    reader = _unframe(data, TAG_STATUS)
    msg = StatusMsg(
        request_id=reader.u32(), job_id=reader.string(),
        status=reader.string(), error=reader.string(),
    )
    reader.done()
    return msg


def encode_result(msg: ResultMsg) -> bytes:
    body = (
        _u32(msg.request_id) + _str(msg.job_id) + _str(msg.status)
        + _blob(msg.payload) + _str(msg.error)
    )
    return _frame(TAG_RESULT, body)


def decode_result(data: bytes) -> ResultMsg:
    reader = _unframe(data, TAG_RESULT)
    msg = ResultMsg(
        request_id=reader.u32(), job_id=reader.string(),
        status=reader.string(), payload=reader.blob(), error=reader.string(),
    )
    reader.done()
    return msg


def encode_event(msg: EventMsg) -> bytes:
    body = (
        _str(msg.job_id) + _str(msg.status) + _blob(msg.payload)
        + _str(msg.error)
    )
    return _frame(TAG_EVENT, body)


def decode_event(data: bytes) -> EventMsg:
    reader = _unframe(data, TAG_EVENT)
    msg = EventMsg(
        job_id=reader.string(), status=reader.string(),
        payload=reader.blob(), error=reader.string(),
    )
    reader.done()
    return msg


def encode_error(msg: ErrorMsg) -> bytes:
    body = _u32(msg.request_id) + _str(msg.message) + _str(msg.code)
    return _frame(TAG_ERROR, body)


def decode_error(data: bytes) -> ErrorMsg:
    reader = _unframe(data, TAG_ERROR)
    msg = ErrorMsg(
        request_id=reader.u32(), message=reader.string(),
        code=reader.string(),
    )
    reader.done()
    return msg


def encode_admin(msg: AdminMsg) -> bytes:
    body = (
        _u32(msg.request_id) + _str(msg.command) + _i64(msg.value)
        + _str(msg.result)
    )
    return _frame(TAG_ADMIN, body)


def decode_admin(data: bytes) -> AdminMsg:
    reader = _unframe(data, TAG_ADMIN)
    msg = AdminMsg(
        request_id=reader.u32(), command=reader.string(),
        value=reader.i64(), result=reader.string(),
    )
    reader.done()
    return msg


# ----------------------------------------------------------------------
# Telemetry exposition (STATS / TRACE)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StatsMsg:
    """Metrics request (client -> server, ``text == ""``) or reply.

    The reply's ``text`` is the server's Prometheus text exposition —
    one flat dump of every counter, gauge, and histogram, already
    rendered so a scraper-shaped consumer can pass it through verbatim.
    """

    request_id: int
    text: str = ""


@dataclass(frozen=True)
class TraceMsg:
    """Span-tree request (``spans == ()``) or reply for one job.

    ``spans`` is the job's recorded phase spans in recording order:
    ``(phase, parent, start, end)`` with ``parent`` the index of the
    enclosing span (``-1`` for top level) and ``start``/``end`` seconds
    on the server's monotonic clock. ``wall_seconds`` is submit start ->
    completion. A tracing-off server answers with zero spans.
    """

    request_id: int
    job_id: str
    wall_seconds: float = 0.0
    spans: tuple[tuple[str, int, float, float], ...] = ()


def encode_stats(msg: StatsMsg) -> bytes:
    return _frame(
        TAG_STATS, _u32(msg.request_id) + _blob(msg.text.encode("utf-8"))
    )


def decode_stats(data: bytes) -> StatsMsg:
    reader = _unframe(data, TAG_STATS)
    request_id = reader.u32()
    raw = reader.blob()
    reader.done()
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireFormatError(f"invalid UTF-8 in stats text: {exc}") from exc
    return StatsMsg(request_id=request_id, text=text)


def encode_trace(msg: TraceMsg) -> bytes:
    if len(msg.spans) > 0xFFFFFFFF:
        raise ValueError(f"too many spans ({len(msg.spans)})")
    body = [
        _u32(msg.request_id),
        _str(msg.job_id),
        struct.pack(">d", msg.wall_seconds),
        _u32(len(msg.spans)),
    ]
    for phase, parent, start, end in msg.spans:
        body.append(_str(phase) + _i64(parent) + struct.pack(">dd", start, end))
    return _frame(TAG_TRACE, b"".join(body))


def decode_trace(data: bytes) -> TraceMsg:
    reader = _unframe(data, TAG_TRACE)
    request_id = reader.u32()
    job_id = reader.string()
    wall_seconds = reader.double()
    spans = tuple(
        (reader.string(), reader.i64(), reader.double(), reader.double())
        for _ in range(reader.u32())
    )
    reader.done()
    return TraceMsg(
        request_id=request_id, job_id=job_id, wall_seconds=wall_seconds,
        spans=spans,
    )


# ----------------------------------------------------------------------
# Fleet worker-control plane (WORKER_KEYS / WORKER_JOB / WORKER_RESULT /
# WORKER_HEARTBEAT / WORKER_FAULTS)
# ----------------------------------------------------------------------
#
# The orchestrator <-> worker pipe speaks the same envelope as the public
# transport; nested blobs (params, keys, ciphertexts, circuits) are the
# *existing* key-registry wire encoding, each re-validated by its own
# CRC on the worker. A worker never sees a secret key.


@dataclass(frozen=True)
class WorkerKeysMsg:
    """Replicate one session's parameter set + evaluation keys.

    ``token`` is the front-door session id; the worker opens (or
    refreshes) a local session under it, so later :class:`WorkerJobMsg`
    routing is a single dict lookup. Sent once per (session, worker) and
    again whenever the front door observes new key material.
    """

    token: str
    tenant: str
    params: bytes  # framed params message
    relin_key: bytes | None = None
    galois_keys: tuple[bytes, ...] = ()


@dataclass(frozen=True)
class WorkerJobMsg:
    """One routed job: raw-op operands or a framed app circuit."""

    job_id: str
    token: str
    kind: str
    steps: int = 0
    operands: tuple[bytes, ...] = ()  # framed ciphertext messages
    circuit: bytes | None = None  # framed circuit message (CIRCUIT kind)


@dataclass(frozen=True)
class WorkerResultMsg:
    """Worker reply for one job: the framed result or a clean failure."""

    job_id: str
    status: str  # "done" | "failed"
    payload: bytes = b""  # framed ciphertext/circuit-outputs when done
    error: str = ""
    cycles: int = 0
    seconds: float = 0.0
    fidelity: str = ""


@dataclass(frozen=True)
class WorkerHeartbeatMsg:
    """Periodic liveness beacon; ``seq == 1`` doubles as the hello."""

    worker: int
    seq: int
    jobs_done: int = 0


@dataclass(frozen=True)
class WorkerFaultsMsg:
    """Re-arm a worker's deterministic fault plan at runtime.

    ``spec`` uses the :meth:`repro.service.fleet.FaultPlan.parse`
    grammar; an empty spec clears all pending faults.
    """

    spec: str = ""


def encode_worker_keys(msg: WorkerKeysMsg) -> bytes:
    body = [
        _str(msg.token),
        _str(msg.tenant),
        _blob(msg.params),
        _optional_blob(msg.relin_key),
        _u16(len(msg.galois_keys)),
    ]
    body.extend(_blob(g) for g in msg.galois_keys)
    return _frame(TAG_WORKER_KEYS, b"".join(body))


def decode_worker_keys(data: bytes) -> WorkerKeysMsg:
    reader = _unframe(data, TAG_WORKER_KEYS)
    token = reader.string()
    tenant = reader.string()
    params = reader.blob()
    relin_key = _read_optional_blob(reader)
    galois = tuple(reader.blob() for _ in range(reader.u16()))
    reader.done()
    return WorkerKeysMsg(
        token=token, tenant=tenant, params=params, relin_key=relin_key,
        galois_keys=galois,
    )


def encode_worker_job(msg: WorkerJobMsg) -> bytes:
    if len(msg.operands) > 0xFFFF:
        raise ValueError(f"too many operands ({len(msg.operands)})")
    body = [
        _str(msg.job_id),
        _str(msg.token),
        _str(msg.kind),
        _i64(msg.steps),
        _optional_blob(msg.circuit),
        _u16(len(msg.operands)),
    ]
    body.extend(_blob(op) for op in msg.operands)
    return _frame(TAG_WORKER_JOB, b"".join(body))


def decode_worker_job(data: bytes) -> WorkerJobMsg:
    reader = _unframe(data, TAG_WORKER_JOB)
    job_id = reader.string()
    token = reader.string()
    kind = reader.string()
    steps = reader.i64()
    circuit = _read_optional_blob(reader)
    operands = tuple(reader.blob() for _ in range(reader.u16()))
    reader.done()
    return WorkerJobMsg(
        job_id=job_id, token=token, kind=kind, steps=steps,
        operands=operands, circuit=circuit,
    )


def encode_worker_result(msg: WorkerResultMsg) -> bytes:
    body = (
        _str(msg.job_id) + _str(msg.status) + _blob(msg.payload)
        + _str(msg.error) + _i64(msg.cycles)
        + struct.pack(">d", msg.seconds) + _str(msg.fidelity)
    )
    return _frame(TAG_WORKER_RESULT, body)


def decode_worker_result(data: bytes) -> WorkerResultMsg:
    reader = _unframe(data, TAG_WORKER_RESULT)
    msg = WorkerResultMsg(
        job_id=reader.string(), status=reader.string(),
        payload=reader.blob(), error=reader.string(), cycles=reader.i64(),
        seconds=reader.double(), fidelity=reader.string(),
    )
    reader.done()
    return msg


def encode_worker_heartbeat(msg: WorkerHeartbeatMsg) -> bytes:
    body = _u32(msg.worker) + _i64(msg.seq) + _i64(msg.jobs_done)
    return _frame(TAG_WORKER_HEARTBEAT, body)


def decode_worker_heartbeat(data: bytes) -> WorkerHeartbeatMsg:
    reader = _unframe(data, TAG_WORKER_HEARTBEAT)
    msg = WorkerHeartbeatMsg(
        worker=reader.u32(), seq=reader.i64(), jobs_done=reader.i64()
    )
    reader.done()
    return msg


def encode_worker_faults(msg: WorkerFaultsMsg) -> bytes:
    return _frame(TAG_WORKER_FAULTS, _str(msg.spec))


def decode_worker_faults(data: bytes) -> WorkerFaultsMsg:
    reader = _unframe(data, TAG_WORKER_FAULTS)
    msg = WorkerFaultsMsg(spec=reader.string())
    reader.done()
    return msg
