"""The serving layer: CoFHEE as a multi-tenant FHE service.

The paper positions CoFHEE as "a small component in a much bigger design,
where the larger design will mostly focus on data movement". This package
is that bigger design in miniature — the layer that turns the reproduction
from a single-shot library into a servable system:

* :mod:`repro.service.serialization` — versioned wire format so
  ciphertexts, keys, and parameter sets can cross a process boundary;
* :mod:`repro.service.registry` — multi-tenant sessions keyed by params
  digest, evaluation-key storage, and per-params context caching;
* :mod:`repro.service.circuits` — app circuits: compiled multi-step
  encrypted programs (named inputs, plaintext constants, an SSA step
  list) that carry the paper's Section VI-C applications over the wire;
* :mod:`repro.service.jobs` — the encrypted-job model (raw homomorphic
  ops, app circuits, and legacy in-process application workloads);
* :mod:`repro.service.scheduler` — fair round-robin batching across
  tenants onto compatible batches;
* :mod:`repro.service.backends` — pluggable execution: a pool of N
  simulated CoFHEE chips (cycle-accurate), the SEAL-style software
  baseline, and the vectorized numpy path;
* :mod:`repro.service.server` — the synchronous in-process front door
  (``submit`` / ``poll`` / ``result``) with the content-addressed result
  cache and in-queue dedupe (cache-aware scheduling);
* :mod:`repro.service.transport` — the asyncio TCP listener: length-
  prefixed CRC-checked frames, a worker-thread execution pump, and
  pushed completion events instead of polling;
* :mod:`repro.service.client` — :class:`AsyncFheClient` (asyncio core)
  and :class:`FheClient` (sync facade) for driving a remote pool;
* :mod:`repro.service.telemetry` — per-job span tracing
  (:class:`JobTrace`), the :class:`MetricsRegistry` behind the wire
  ``STATS``/``TRACE`` exposition, and the phase-attribution fold
  (:func:`aggregate_phases`) that ``tools/profile_serve.py`` prints;
* :mod:`repro.service.demo` — the multi-tenant end-to-end demo behind
  the ``repro-serve`` console script (``--listen`` starts the transport,
  ``--smoke`` runs a localhost round-trip self-test).
"""

from repro.service.backends import (
    Backend,
    BackendError,
    BatchReport,
    ChipPoolBackend,
    FastNttBackend,
    SoftwareBackend,
)
from repro.service.circuits import (
    Circuit,
    CircuitBuilder,
    CircuitError,
    evaluate_circuit,
)
from repro.service.client import (
    AsyncFheClient,
    FheClient,
    JobFailedError,
    TransportError,
)
from repro.service.jobs import Job, JobKind, JobMetrics, JobStatus
from repro.service.registry import Session, SessionError, SessionRegistry
from repro.service.scheduler import BatchingScheduler, ServiceStats
from repro.service.serialization import (
    ParamsMismatchError,
    WireFormatError,
    deserialize_circuit,
    deserialize_circuit_outputs,
    params_digest,
    serialize_circuit,
    serialize_circuit_outputs,
)
from repro.service.server import FheServer
from repro.service.telemetry import (
    PHASES,
    JobTrace,
    MetricsRegistry,
    aggregate_phases,
    new_trace,
    tracing_enabled,
)
from repro.service.transport import (
    FheTransportServer,
    FrameError,
    ThreadedTransportServer,
)

__all__ = [
    "AsyncFheClient",
    "Backend",
    "BackendError",
    "BatchReport",
    "BatchingScheduler",
    "ChipPoolBackend",
    "Circuit",
    "CircuitBuilder",
    "CircuitError",
    "FastNttBackend",
    "FheClient",
    "FheServer",
    "FheTransportServer",
    "FrameError",
    "Job",
    "JobFailedError",
    "JobKind",
    "JobMetrics",
    "JobStatus",
    "JobTrace",
    "MetricsRegistry",
    "PHASES",
    "ParamsMismatchError",
    "ServiceStats",
    "Session",
    "SessionError",
    "SessionRegistry",
    "SoftwareBackend",
    "ThreadedTransportServer",
    "TransportError",
    "WireFormatError",
    "aggregate_phases",
    "deserialize_circuit",
    "deserialize_circuit_outputs",
    "evaluate_circuit",
    "new_trace",
    "params_digest",
    "serialize_circuit",
    "serialize_circuit_outputs",
    "tracing_enabled",
]
