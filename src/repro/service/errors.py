"""Typed service errors with wire codes and retryability.

Every rejection the service can hand a client carries a short machine
code on the ERROR frame (``ErrorMsg.code``) so clients can decide
*mechanically* whether to retry: quota pushback and shutdown drains are
transient, auth failures and expired deadlines are not. The exception
classes double as the server-side vocabulary — raising one anywhere in
the submit path produces the right wire code without string matching.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "AuthError",
    "QuotaExceededError",
    "DeadlineExpiredError",
    "ShuttingDownError",
    "RETRYABLE_CODES",
]


class ServiceError(RuntimeError):
    """Base for typed service rejections carried on ERROR frames."""

    code: str = ""
    retryable: bool = False


class AuthError(ServiceError):
    """OPEN_SESSION token rejected: unknown tenant or bad token."""

    code = "auth"
    retryable = False


class QuotaExceededError(ServiceError):
    """Per-tenant admission control rejected the submit.

    Raised *before any math* — an over-quota submission leaves no
    server state, so resubmitting after backoff is always safe.
    """

    code = "quota"
    retryable = True


class DeadlineExpiredError(ServiceError):
    """The job's deadline passed before a result could be delivered."""

    code = "deadline"
    retryable = False


class ShuttingDownError(ServiceError):
    """The server is draining; reconnect and resubmit elsewhere."""

    code = "unavailable"
    retryable = True


#: Wire codes a client may retry with backoff. Everything else is
#: terminal — retrying an auth failure or an expired deadline cannot
#: succeed.
RETRYABLE_CODES = frozenset(
    cls.code for cls in (QuotaExceededError, ShuttingDownError)
)
