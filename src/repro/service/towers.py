"""Tower-level work items: sharding one EvalMult across a chip pool.

PR 1's pool parallelized at *job* granularity: a multi-tower EvalMult ran
its RNS towers sequentially on one worker. This module is the planning
layer that breaks the job open: each tower of the Eq. 4 tensor becomes a
:class:`TowerWorkItem`, the planner spreads items across workers
least-loaded-first while keeping same-modulus items together (so each
worker programs a tower's twiddles once per batch), and
:class:`TowerGather` is the barrier that holds per-tower outputs until a
job's full tower set has arrived and can be CRT-recombined.

The scheduler's batch formation is unchanged — batches still pack
compatible jobs fairly across tenants — but inside the chip-pool backend
one batch now fans out into ``jobs x towers`` units and gathers back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass(frozen=True)
class TowerWorkItem:
    """One tower of one Eq. 4 tensor, ready to dispatch.

    Attributes:
        job_seq: key of the owning work unit within its batch — a raw
            EvalMult/SQUARE job is one unit, and an app circuit
            contributes one unit per tensor step (the chip-pool backend
            allocates the unit ids and maps them back to jobs).
        tower: tower index within the session's CoFHEE basis.
        modulus: the tower modulus ``q_i`` to program.
        est_cycles: modeled Algorithm 3 cycles (drives load balancing).
    """

    job_seq: int
    tower: int
    modulus: int
    est_cycles: int


def plan_tower_dispatch(
    items: Sequence[TowerWorkItem],
    worker_loads: Sequence[int],
    worker_programmed: Sequence[int | None] | None = None,
    metrics=None,
) -> dict[int, list[TowerWorkItem]]:
    """Assign tower work items to workers, least-loaded first.

    Items are grouped by modulus and each *group* is placed whole, so a
    worker programs every modulus it touches exactly once per batch (the
    reprogramming amortization the driver's ``ensure_programmed`` then
    turns into a single twiddle download). Groups are placed largest
    first onto the worker with the smallest projected load; ties prefer a
    worker whose chip already has that modulus programmed from an earlier
    batch, then the lowest index — the assignment is deterministic.

    Args:
        items: the batch's tower work units.
        worker_loads: current busy cycles per worker (index-aligned).
        worker_programmed: the modulus each worker's chip currently has
            programmed (``None`` for unprogrammed), for affinity ties.
            Callers must pass ``None`` for workers whose programmed
            *degree* differs from this batch's — the driver keys its
            reprogramming cache on the full ``(q, n)`` pair.
        metrics: optional
            :class:`~repro.service.telemetry.MetricsRegistry`; when set,
            the planner counts items planned and observes how many
            workers each planning round spread them over.

    Returns:
        worker index -> its items, in dispatch order. Workers with no
        assignment are absent.
    """
    if not worker_loads:
        raise ValueError("need at least one worker")
    programmed = list(worker_programmed or [None] * len(worker_loads))
    groups: dict[int, list[TowerWorkItem]] = {}
    for item in items:
        groups.setdefault(item.modulus, []).append(item)
    # Largest group first; tie-break on lowest tower index for determinism.
    ordered = sorted(
        groups.values(),
        key=lambda g: (-sum(i.est_cycles for i in g), min(i.tower for i in g)),
    )
    loads = list(worker_loads)
    plan: dict[int, list[TowerWorkItem]] = {}
    for group in ordered:
        q = group[0].modulus
        widx = min(
            range(len(loads)),
            key=lambda w: (loads[w], 0 if programmed[w] == q else 1, w),
        )
        plan.setdefault(widx, []).extend(group)
        loads[widx] += sum(i.est_cycles for i in group)
        programmed[widx] = q
    if metrics is not None and items:
        metrics.counter(
            "repro_tower_items_planned_total",
            "tower work units planned onto pool workers",
        ).inc(len(items))
        metrics.histogram(
            "repro_tower_fanout_workers",
            "distinct workers used per tower planning round",
            buckets=(1, 2, 4, 8, 16, 32),
        ).observe(len(plan))
    return plan


@dataclass(frozen=True)
class KeySwitchWorkItem:
    """One tensor's relinearization tail, ready to charge to a worker.

    Key-switching is not tower-bound: after a tensor's gather completes,
    its base-T digit fold runs over the whole tower stack at once (the
    batched engine shares one digit-decomposition pass across every job
    under the same eval-key digest). Each item prices one tensor's tail
    with the same Algorithm-3-derived relinearization estimate the model
    path uses, so chip-side execution changes *where* the cycles land,
    never how many there are.

    Attributes:
        job_seq: owning work unit's key within its batch.
        est_cycles: modeled relinearization cycles for one tensor.
    """

    job_seq: int
    est_cycles: int


def plan_keyswitch_dispatch(
    items: Sequence[KeySwitchWorkItem],
    worker_loads: Sequence[int],
) -> list[int]:
    """Assign key-switch tails to workers, least-loaded first.

    Items are placed one at a time in the given order, each onto the
    worker with the smallest projected load (ties break on the lowest
    index), updating the projection as it goes — the same greedy rule
    :func:`plan_tower_dispatch` uses, minus modulus affinity (a
    key-switch fold is not tied to any one tower's twiddles).

    Returns:
        one worker index per item, order-aligned with ``items``.
    """
    if not worker_loads:
        raise ValueError("need at least one worker")
    loads = list(worker_loads)
    assignment: list[int] = []
    for item in items:
        widx = min(range(len(loads)), key=lambda w: (loads[w], w))
        assignment.append(widx)
        loads[widx] += item.est_cycles
    return assignment


@dataclass
class TowerGather:
    """The barrier between tower fan-out and CRT recombination.

    Collects per-tower outputs keyed by ``(job_seq, tower)``; a job is
    ``complete`` once every expected tower has reported, at which point
    :meth:`towers` hands the outputs back in global tower order (what
    :meth:`~repro.polymath.rns.RnsBasis.reconstruct_poly` expects).
    """

    expected: dict[int, tuple[int, ...]]
    _arrived: dict[int, dict[int, object]] = field(default_factory=dict)

    def put(self, job_seq: int, tower: int, output: object) -> None:
        if job_seq not in self.expected:
            raise KeyError(f"job seq {job_seq} was never registered")
        if tower not in self.expected[job_seq]:
            raise KeyError(f"job seq {job_seq} does not expect tower {tower}")
        slot = self._arrived.setdefault(job_seq, {})
        if tower in slot:
            raise ValueError(f"tower {tower} of job seq {job_seq} arrived twice")
        slot[tower] = output

    def discard(self, job_seq: int) -> None:
        """Drop a job mid-flight (its execution failed elsewhere)."""
        self.expected.pop(job_seq, None)
        self._arrived.pop(job_seq, None)

    def complete(self, job_seq: int) -> bool:
        return (
            job_seq in self.expected
            and len(self._arrived.get(job_seq, ())) == len(self.expected[job_seq])
        )

    @property
    def pending(self) -> list[int]:
        return [seq for seq in self.expected if not self.complete(seq)]

    def towers(self, job_seq: int) -> list[object]:
        """All of a job's tower outputs, in tower-index order."""
        if not self.complete(job_seq):
            missing = [
                t for t in self.expected.get(job_seq, ())
                if t not in self._arrived.get(job_seq, {})
            ]
            raise ValueError(
                f"job seq {job_seq} is missing towers {missing}; the gather "
                "barrier only releases complete jobs"
            )
        arrived = self._arrived[job_seq]
        return [arrived[t] for t in sorted(self.expected[job_seq])]


def tower_items_for(
    job_seq: int, moduli: Iterable[int], est_cycles: int
) -> list[TowerWorkItem]:
    """One work item per tower of a job's basis (uniform cycle estimate)."""
    return [
        TowerWorkItem(job_seq=job_seq, tower=i, modulus=q, est_cycles=est_cycles)
        for i, q in enumerate(moduli)
    ]
