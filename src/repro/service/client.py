"""Client side of the wire transport: async core plus a sync facade.

:class:`AsyncFheClient` multiplexes one TCP connection: requests carry a
client-chosen id echoed by the reply, and a background reader task routes
every incoming frame — replies resolve their request future, EVENT pushes
resolve job futures and fire the registered completion callbacks. Nothing
polls: ``await client.result(job_id)`` parks on the job's future until
the server pushes its completion event.

:class:`FheClient` wraps the async core for synchronous callers (apps,
benchmarks, the ``repro-serve --smoke`` self-test): it hosts a private
event loop on a daemon thread and bridges every call with
``run_coroutine_threadsafe``. Completion callbacks run on that loop
thread — keep them short and thread-safe.

With a :class:`RetryPolicy` the client rides out transient rejections
and dead links: retryable ERROR codes (``quota``, ``unavailable``) back
off with jittered exponential delays and resend, and a connection that
dies while results are outstanding is reconnected and the recorded
submissions resent. Resubmission is exactly-once-safe by construction —
the server content-addresses results and dedupes identical in-queue
jobs, so a resent submission either joins the original execution or
replays its cached result, never computes twice. Job-level failures
(``deadline``, math errors) are terminal and never retried.

Keys stay client-side, as everywhere in the serving layer: the client
sends parameter sets, *evaluation* keys, and ciphertext bytes; secret
keys have no wire encoding at all.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import random
import threading
from dataclasses import dataclass
from typing import Callable

from repro.bfv.params import BfvParameters
from repro.bfv.scheme import Ciphertext
from repro.service.circuits import Circuit
from repro.service.errors import RETRYABLE_CODES
from repro.service.jobs import JobKind
from repro.service.serialization import (
    AdminMsg,
    ErrorMsg,
    EventMsg,
    OpenSessionMsg,
    ResultMsg,
    StatsMsg,
    StatusMsg,
    SubmitCircuitMsg,
    SubmitMsg,
    TAG_ADMIN,
    TAG_ERROR,
    TAG_EVENT,
    TAG_RESULT,
    TAG_SESSION,
    TAG_STATS,
    TAG_STATUS,
    TAG_TRACE,
    TraceMsg,
    WireFormatError,
    decode_admin,
    decode_error,
    decode_event,
    decode_result,
    decode_session,
    decode_stats,
    decode_status,
    decode_trace,
    encode_admin,
    encode_open_session,
    encode_stats,
    encode_submit,
    encode_submit_circuit,
    encode_status,
    encode_result,
    encode_trace,
    peek_tag,
    serialize_ciphertext,
    serialize_circuit,
    serialize_params,
)
from repro.service.transport import (
    DEFAULT_MAX_FRAME,
    frame_stream,
    write_frame,
)


class TransportError(RuntimeError):
    """The server answered a request with an ERROR frame.

    ``code`` is the wire error code (``auth``, ``quota``, ``deadline``,
    ``unavailable``, or ``""`` for untyped failures); ``retryable`` says
    whether backing off and resending the same request can succeed.
    """

    def __init__(self, message: str, code: str = ""):
        super().__init__(message)
        self.code = code

    @property
    def retryable(self) -> bool:
        return self.code in RETRYABLE_CODES


class JobFailedError(TransportError):
    """A submitted job finished in the FAILED state (always terminal).

    ``kind`` classifies the failure: ``"deadline"`` when the job's
    deadline expired (queued or in flight), ``""`` otherwise.
    """

    def __init__(self, job_id: str, message: str):
        super().__init__(f"job {job_id} failed: {message}")
        self.job_id = job_id
        self.kind = (
            "deadline" if message.startswith("deadline expired") else ""
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for retryable transport failures.

    Attempt ``i`` (0-based) waits ``min(max_delay, base_delay *
    multiplier**i)`` scaled down by up to ``jitter`` (uniformly), then
    resends. ``attempts`` bounds total tries including the first; a
    fixed ``seed`` makes the delay sequence deterministic for tests.
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int | None = None

    def delays(self) -> list[float]:
        """The between-attempt waits (``attempts - 1`` of them)."""
        rng = random.Random(self.seed)
        out = []
        for i in range(max(0, self.attempts - 1)):
            delay = min(self.max_delay, self.base_delay * self.multiplier**i)
            out.append(delay * (1.0 - self.jitter * rng.random()))
        return out


#: Completion callbacks receive the decoded EVENT for their job.
DoneCallback = Callable[[EventMsg], None]


class _ClientJob:
    """Per-job completion state: one future, any number of callbacks.

    ``events`` counts completion EVENT frames seen for the job — the
    exactly-once tests read it; a correct server leaves it at 1.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self.future: asyncio.Future[EventMsg] = loop.create_future()
        self.callbacks: list[DoneCallback] = []
        self.events = 0

    def add_callback(self, callback: DoneCallback) -> None:
        if self.future.done():
            callback(self.future.result())
        else:
            self.callbacks.append(callback)

    def deliver(self, event: EventMsg) -> None:
        self.events += 1
        if not self.future.done():
            self.future.set_result(event)
        # Callbacks fire once per received event on purpose: a server
        # that double-delivers shows up in the exactly-once battery.
        for callback in self.callbacks:
            callback(event)


def _wire_operands(operands) -> tuple[bytes, ...]:
    out = []
    for op in operands:
        if isinstance(op, (bytes, bytearray)):
            out.append(bytes(op))
        elif isinstance(op, Ciphertext):
            out.append(serialize_ciphertext(op))
        else:
            raise TypeError(
                f"operands must be wire bytes or Ciphertext, got {type(op)!r}"
            )
    return tuple(out)


class AsyncFheClient:
    """One multiplexed connection to a :class:`FheTransportServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 retry: "RetryPolicy | None" = None):
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._retry = retry
        self._loop = asyncio.get_running_loop()
        self._request_ids = itertools.count(1)
        self._replies: dict[int, asyncio.Future] = {}
        self._jobs: dict[str, _ClientJob] = {}
        #: job_id → resubmittable record, for reconnect-and-resubmit.
        self._submissions: dict[str, tuple] = {}
        self._closed = False
        #: Dial-back address; empty when built on a raw stream (then
        #: connection loss is terminal — there is nowhere to redial).
        self._host = ""
        self._port = 0
        self._reconnect_lock = asyncio.Lock()
        #: Successful redials — the chaos battery reads this.
        self.reconnects = 0
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int, *,
                      max_frame: int = DEFAULT_MAX_FRAME,
                      retry: "RetryPolicy | None" = None,
                      ) -> "AsyncFheClient":
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, max_frame, retry)
        client._host, client._port = host, port
        return client

    # -- frame routing -------------------------------------------------

    async def _read_loop(self) -> None:
        exc: Exception = ConnectionError("connection closed by server")
        try:
            async for frame in frame_stream(self._reader, self._max_frame):
                self._route(frame)
        except Exception as caught:  # noqa: BLE001 — fail all waiters below
            exc = caught
        finally:
            self._fail_outstanding(exc)

    def _route(self, frame: bytes) -> None:
        tag = peek_tag(frame)
        if tag == TAG_EVENT:
            event = decode_event(frame)
            # The server may push the EVENT right behind the SUBMIT reply
            # (cache hits do), so both can land in one read chunk —
            # before the submit() coroutine has resumed to register the
            # job. Create the record here; submit()'s setdefault adopts
            # it and sees the already-resolved future.
            self._jobs.setdefault(
                event.job_id, _ClientJob(self._loop)
            ).deliver(event)
            return
        if tag == TAG_SESSION:
            msg = decode_session(frame)
        elif tag == TAG_STATUS:
            msg = decode_status(frame)
        elif tag == TAG_RESULT:
            msg = decode_result(frame)
        elif tag == TAG_STATS:
            msg = decode_stats(frame)
        elif tag == TAG_TRACE:
            msg = decode_trace(frame)
        elif tag == TAG_ADMIN:
            msg = decode_admin(frame)
        elif tag == TAG_ERROR:
            err = decode_error(frame)
            if err.request_id == 0:
                # Connection-level protocol error: everything in flight
                # is dead; the server is closing the link.
                self._fail_outstanding(TransportError(err.message, err.code))
                return
            future = self._replies.pop(err.request_id, None)
            if future is not None and not future.done():
                future.set_exception(TransportError(err.message, err.code))
            return
        else:
            raise WireFormatError(f"unexpected server frame tag 0x{tag:02x}")
        future = self._replies.pop(msg.request_id, None)
        if future is not None and not future.done():
            future.set_result(msg)

    def _fail_outstanding(self, exc: Exception) -> None:
        for future in self._replies.values():
            if not future.done():
                future.set_exception(exc)
        self._replies.clear()
        for job in self._jobs.values():
            if not job.future.done():
                job.future.set_exception(exc)

    async def _request(self, message: bytes, request_id: int):
        if self._closed:
            raise TransportError("client is closed")
        future = self._loop.create_future()
        self._replies[request_id] = future
        try:
            await write_frame(self._writer, message, self._max_frame)
        except BaseException:
            # The request never left: unregister its reply future so it
            # cannot linger (and warn about an unretrieved exception) at
            # connection teardown.
            self._replies.pop(request_id, None)
            future.cancel()
            raise
        return await future

    # -- API -----------------------------------------------------------

    async def open_session(
        self,
        tenant: str,
        params: bytes | BfvParameters,
        *,
        public_key: bytes | None = None,
        relin_key: bytes | None = None,
        galois_keys: tuple[bytes, ...] = (),
        token: str = "",
    ) -> str:
        """Open (or rejoin) the tenant's session for a parameter set.

        ``token`` authenticates the tenant against the server's auth
        table (required when the server was started with one; checked
        before any session state is touched).
        """
        if isinstance(params, BfvParameters):
            params = serialize_params(params)
        rid = next(self._request_ids)
        reply = await self._request(encode_open_session(OpenSessionMsg(
            request_id=rid, tenant=tenant, params=bytes(params),
            public_key=public_key, relin_key=relin_key,
            galois_keys=tuple(bytes(g) for g in galois_keys),
            token=token,
        )), rid)
        return reply.session_id

    async def submit(
        self,
        session_id: str,
        kind: JobKind | str,
        operands=(),
        *,
        steps: int = 0,
        backend: str = "",
        deadline: float = 0.0,
        on_done: DoneCallback | None = None,
    ) -> str:
        """Queue a raw-op job; returns its job id.

        The submission subscribes to the job's completion event, so a
        later ``await result(job_id)`` never polls, and ``on_done`` (if
        given) fires with the :class:`EventMsg` the moment the server
        pushes it. ``deadline`` is a relative budget in seconds (0 = no
        deadline): the server sheds the job with a typed failure if it
        has not executed within it.
        """
        kind_value = kind.value if isinstance(kind, JobKind) else str(kind)
        record = ("submit", dict(
            session_id=session_id, kind=kind_value,
            operands=_wire_operands(operands),
            steps=steps, backend=backend, deadline=deadline, subscribe=True,
        ))
        job_id = await self._submit_with_retry(record)
        self._submissions[job_id] = record
        if on_done is not None:
            self._jobs[job_id].add_callback(on_done)
        return job_id

    async def submit_circuit(
        self,
        session_id: str,
        circuit: Circuit | bytes,
        inputs=(),
        *,
        backend: str = "",
        deadline: float = 0.0,
        on_done: DoneCallback | None = None,
    ) -> str:
        """Queue a whole app circuit; returns its job id.

        ``circuit`` may be a built :class:`~repro.service.circuits.Circuit`
        or its pre-serialized wire bytes; ``inputs`` bind positionally to
        the circuit's named inputs (wire bytes or Ciphertext objects).
        ``await result(job_id)`` then yields the framed named-output map
        — decode it with
        :func:`~repro.service.serialization.deserialize_circuit_outputs`.
        """
        wire_circuit = (
            bytes(circuit) if isinstance(circuit, (bytes, bytearray))
            else serialize_circuit(circuit)
        )
        record = ("submit_circuit", dict(
            session_id=session_id, circuit=wire_circuit,
            operands=_wire_operands(inputs), backend=backend,
            deadline=deadline, subscribe=True,
        ))
        job_id = await self._submit_with_retry(record)
        self._submissions[job_id] = record
        if on_done is not None:
            self._jobs[job_id].add_callback(on_done)
        return job_id

    # -- retry machinery -----------------------------------------------

    async def _send_submission(self, record: tuple) -> str:
        """Send one recorded submission and register its job future."""
        op, kwargs = record
        rid = next(self._request_ids)
        if op == "submit":
            frame = encode_submit(SubmitMsg(request_id=rid, **kwargs))
        else:
            frame = encode_submit_circuit(
                SubmitCircuitMsg(request_id=rid, **kwargs)
            )
        reply: StatusMsg = await self._request(frame, rid)
        self._jobs.setdefault(reply.job_id, _ClientJob(self._loop))
        return reply.job_id

    async def _submit_with_retry(self, record: tuple) -> str:
        delays = self._retry.delays() if self._retry is not None else []
        attempt = 0
        while True:
            try:
                return await self._send_submission(record)
            except JobFailedError:
                raise
            except (TransportError, ConnectionError, OSError,
                    asyncio.IncompleteReadError, WireFormatError) as exc:
                lost_link = not isinstance(exc, TransportError)
                retryable = (
                    exc.retryable if isinstance(exc, TransportError)
                    else bool(self._host)
                )
                if attempt >= len(delays) or not retryable or self._closed:
                    raise
                await asyncio.sleep(delays[attempt])
                attempt += 1
                if lost_link:
                    await self._reconnect()

    async def _reconnect(self) -> None:
        """Redial the server and restart frame routing (idempotent:
        concurrent losers of the lock see a live link and return)."""
        if not self._host:
            raise TransportError(
                "client was built on a raw stream; cannot reconnect"
            )
        async with self._reconnect_lock:
            if self._closed:
                raise TransportError("client is closed")
            if not self._writer.is_closing() and not self._reader_task.done():
                return  # another coroutine already redialed
            self._reader_task.cancel()
            with contextlib.suppress(BaseException):
                await self._reader_task
            with contextlib.suppress(ConnectionError, OSError):
                self._writer.close()
            reader, writer = await asyncio.open_connection(
                self._host, self._port
            )
            self._reader = reader
            self._writer = writer
            self._reader_task = asyncio.ensure_future(self._read_loop())
            self.reconnects += 1

    async def result(self, job_id: str) -> bytes:
        """Await the job's completion event; returns the result bytes.

        Raises :class:`JobFailedError` if the job failed server-side
        (terminal — never retried). With a :class:`RetryPolicy`, a
        connection that dies first is redialed and the recorded
        submission resent: content addressing and in-queue dedupe make
        the replay exactly-once-safe, and the payload that comes back is
        bit-identical to what the lost link would have carried.
        """
        if job_id not in self._jobs:
            raise KeyError(
                f"job {job_id!r} was not submitted on this client"
            ) from None
        current = job_id
        delays = self._retry.delays() if self._retry is not None else []
        attempt = 0
        while True:
            job = self._jobs[current]
            try:
                event = await asyncio.shield(job.future)
            except asyncio.CancelledError:
                raise
            except Exception:
                # The only exception source for a job future is
                # _fail_outstanding — the link died under us.
                record = self._submissions.get(job_id)
                if (attempt >= len(delays) or record is None
                        or not self._host or self._closed):
                    raise
                await asyncio.sleep(delays[attempt])
                attempt += 1
                await self._reconnect()
                current = await self._send_submission(record)
                continue
            if event.status != "done":
                raise JobFailedError(current, event.error or "unknown failure")
            return event.payload

    async def status(self, job_id: str) -> str:
        """Ask the server for a job's current status (read-only)."""
        rid = next(self._request_ids)
        reply: StatusMsg = await self._request(encode_status(StatusMsg(
            request_id=rid, job_id=job_id
        )), rid)
        return reply.status

    async def fetch_result(self, job_id: str) -> bytes:
        """Request a job's result explicitly (RESULT frame).

        Useful for jobs another connection submitted, or after a missed
        event; the server answers when the job completes.
        """
        rid = next(self._request_ids)
        reply: ResultMsg = await self._request(encode_result(ResultMsg(
            request_id=rid, job_id=job_id
        )), rid)
        if reply.status != "done":
            raise JobFailedError(job_id, reply.error or "unknown failure")
        return reply.payload

    async def stats(self) -> str:
        """Fetch the server's metrics as Prometheus exposition text."""
        rid = next(self._request_ids)
        reply: StatsMsg = await self._request(
            encode_stats(StatsMsg(request_id=rid)), rid
        )
        return reply.text

    async def trace(self, job_id: str) -> TraceMsg:
        """Fetch a job's span tree (any job id the server knows).

        The reply's ``spans`` are ``(phase, parent, start, end)`` tuples;
        a tracing-off server answers with zero spans. Unknown job ids
        raise :class:`TransportError` (the server's ERROR frame).
        """
        rid = next(self._request_ids)
        return await self._request(
            encode_trace(TraceMsg(request_id=rid, job_id=job_id)), rid
        )

    async def admin(self, command: str, value: int = 1) -> int:
        """Fleet admin over the wire (``grow``/``shrink``/``resize``).

        Returns the fleet size after the operation; raises
        :class:`TransportError` on a fleetless server or bad command.
        """
        rid = next(self._request_ids)
        reply: AdminMsg = await self._request(encode_admin(AdminMsg(
            request_id=rid, command=command, value=value
        )), rid)
        return reply.value

    def events_received(self, job_id: str) -> int:
        """How many completion events arrived for a job (expected: 1)."""
        job = self._jobs.get(job_id)
        return 0 if job is None else job.events

    async def aclose(self, drain: bool = True,
                     drain_timeout: float = 30.0) -> None:
        if self._closed:
            return
        if drain:
            # Graceful close: give outstanding completion events a
            # bounded window to land before tearing the link down.
            pending = [
                job.future for job in self._jobs.values()
                if not job.future.done()
            ]
            if pending:
                with contextlib.suppress(Exception):
                    await asyncio.wait(pending, timeout=drain_timeout)
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncFheClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()


class FheClient:
    """Synchronous facade over :class:`AsyncFheClient`.

    Hosts a private event loop on a daemon thread so ordinary code (and
    the benchmarks) can drive a remote pool without touching asyncio::

        with FheClient(host, port) as client:
            sid = client.open_session("acme", params_bytes, relin_key=rk)
            job = client.submit(sid, "multiply", (a_bytes, b_bytes))
            wire = client.result(job)   # parks on the completion event
            app = client.submit_circuit(sid, model.to_circuit(batch=4), cts)
            outputs = client.result(app)  # framed named-output map

    ``on_done`` callbacks run on the client's loop thread.
    """

    def __init__(self, host: str, port: int, *,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 timeout: float | None = 120.0,
                 retry: RetryPolicy | None = None):
        self._timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="fhe-client", daemon=True
        )
        self._thread.start()
        try:
            self._client: AsyncFheClient = self._run(
                AsyncFheClient.connect(
                    host, port, max_frame=max_frame, retry=retry
                )
            )
        except BaseException:
            self._stop_loop()
            raise

    def _run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            self._timeout
        )

    def open_session(self, tenant, params, *, public_key=None,
                     relin_key=None, galois_keys=(), token="") -> str:
        return self._run(self._client.open_session(
            tenant, params, public_key=public_key, relin_key=relin_key,
            galois_keys=galois_keys, token=token,
        ))

    def submit(self, session_id, kind, operands=(), *, steps=0, backend="",
               deadline=0.0, on_done: DoneCallback | None = None) -> str:
        return self._run(self._client.submit(
            session_id, kind, operands, steps=steps, backend=backend,
            deadline=deadline, on_done=on_done,
        ))

    def submit_circuit(self, session_id, circuit, inputs=(), *, backend="",
                       deadline=0.0,
                       on_done: DoneCallback | None = None) -> str:
        return self._run(self._client.submit_circuit(
            session_id, circuit, inputs, backend=backend, deadline=deadline,
            on_done=on_done,
        ))

    def result(self, job_id: str) -> bytes:
        return self._run(self._client.result(job_id))

    def status(self, job_id: str) -> str:
        return self._run(self._client.status(job_id))

    def fetch_result(self, job_id: str) -> bytes:
        return self._run(self._client.fetch_result(job_id))

    def stats(self) -> str:
        return self._run(self._client.stats())

    def trace(self, job_id: str) -> TraceMsg:
        return self._run(self._client.trace(job_id))

    def admin(self, command: str, value: int = 1) -> int:
        return self._run(self._client.admin(command, value))

    def events_received(self, job_id: str) -> int:
        return self._client.events_received(job_id)

    def close(self) -> None:
        if self._loop.is_closed():
            return
        try:
            self._run(self._client.aclose())
        finally:
            self._stop_loop()

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()

    def __enter__(self) -> "FheClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
