"""Client side of the wire transport: async core plus a sync facade.

:class:`AsyncFheClient` multiplexes one TCP connection: requests carry a
client-chosen id echoed by the reply, and a background reader task routes
every incoming frame — replies resolve their request future, EVENT pushes
resolve job futures and fire the registered completion callbacks. Nothing
polls: ``await client.result(job_id)`` parks on the job's future until
the server pushes its completion event.

:class:`FheClient` wraps the async core for synchronous callers (apps,
benchmarks, the ``repro-serve --smoke`` self-test): it hosts a private
event loop on a daemon thread and bridges every call with
``run_coroutine_threadsafe``. Completion callbacks run on that loop
thread — keep them short and thread-safe.

Keys stay client-side, as everywhere in the serving layer: the client
sends parameter sets, *evaluation* keys, and ciphertext bytes; secret
keys have no wire encoding at all.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from typing import Callable

from repro.bfv.params import BfvParameters
from repro.bfv.scheme import Ciphertext
from repro.service.circuits import Circuit
from repro.service.jobs import JobKind
from repro.service.serialization import (
    ErrorMsg,
    EventMsg,
    OpenSessionMsg,
    ResultMsg,
    StatsMsg,
    StatusMsg,
    SubmitCircuitMsg,
    SubmitMsg,
    TAG_ERROR,
    TAG_EVENT,
    TAG_RESULT,
    TAG_SESSION,
    TAG_STATS,
    TAG_STATUS,
    TAG_TRACE,
    TraceMsg,
    WireFormatError,
    decode_error,
    decode_event,
    decode_result,
    decode_session,
    decode_stats,
    decode_status,
    decode_trace,
    encode_open_session,
    encode_stats,
    encode_submit,
    encode_submit_circuit,
    encode_status,
    encode_result,
    encode_trace,
    peek_tag,
    serialize_ciphertext,
    serialize_circuit,
    serialize_params,
)
from repro.service.transport import (
    DEFAULT_MAX_FRAME,
    frame_stream,
    write_frame,
)


class TransportError(RuntimeError):
    """The server answered a request with an ERROR frame."""


class JobFailedError(TransportError):
    """A submitted job finished in the FAILED state."""

    def __init__(self, job_id: str, message: str):
        super().__init__(f"job {job_id} failed: {message}")
        self.job_id = job_id


#: Completion callbacks receive the decoded EVENT for their job.
DoneCallback = Callable[[EventMsg], None]


class _ClientJob:
    """Per-job completion state: one future, any number of callbacks.

    ``events`` counts completion EVENT frames seen for the job — the
    exactly-once tests read it; a correct server leaves it at 1.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self.future: asyncio.Future[EventMsg] = loop.create_future()
        self.callbacks: list[DoneCallback] = []
        self.events = 0

    def add_callback(self, callback: DoneCallback) -> None:
        if self.future.done():
            callback(self.future.result())
        else:
            self.callbacks.append(callback)

    def deliver(self, event: EventMsg) -> None:
        self.events += 1
        if not self.future.done():
            self.future.set_result(event)
        # Callbacks fire once per received event on purpose: a server
        # that double-delivers shows up in the exactly-once battery.
        for callback in self.callbacks:
            callback(event)


def _wire_operands(operands) -> tuple[bytes, ...]:
    out = []
    for op in operands:
        if isinstance(op, (bytes, bytearray)):
            out.append(bytes(op))
        elif isinstance(op, Ciphertext):
            out.append(serialize_ciphertext(op))
        else:
            raise TypeError(
                f"operands must be wire bytes or Ciphertext, got {type(op)!r}"
            )
    return tuple(out)


class AsyncFheClient:
    """One multiplexed connection to a :class:`FheTransportServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 max_frame: int = DEFAULT_MAX_FRAME):
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._loop = asyncio.get_running_loop()
        self._request_ids = itertools.count(1)
        self._replies: dict[int, asyncio.Future] = {}
        self._jobs: dict[str, _ClientJob] = {}
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int, *,
                      max_frame: int = DEFAULT_MAX_FRAME) -> "AsyncFheClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame)

    # -- frame routing -------------------------------------------------

    async def _read_loop(self) -> None:
        exc: Exception = ConnectionError("connection closed by server")
        try:
            async for frame in frame_stream(self._reader, self._max_frame):
                self._route(frame)
        except Exception as caught:  # noqa: BLE001 — fail all waiters below
            exc = caught
        finally:
            self._fail_outstanding(exc)

    def _route(self, frame: bytes) -> None:
        tag = peek_tag(frame)
        if tag == TAG_EVENT:
            event = decode_event(frame)
            # The server may push the EVENT right behind the SUBMIT reply
            # (cache hits do), so both can land in one read chunk —
            # before the submit() coroutine has resumed to register the
            # job. Create the record here; submit()'s setdefault adopts
            # it and sees the already-resolved future.
            self._jobs.setdefault(
                event.job_id, _ClientJob(self._loop)
            ).deliver(event)
            return
        if tag == TAG_SESSION:
            msg = decode_session(frame)
        elif tag == TAG_STATUS:
            msg = decode_status(frame)
        elif tag == TAG_RESULT:
            msg = decode_result(frame)
        elif tag == TAG_STATS:
            msg = decode_stats(frame)
        elif tag == TAG_TRACE:
            msg = decode_trace(frame)
        elif tag == TAG_ERROR:
            err = decode_error(frame)
            if err.request_id == 0:
                # Connection-level protocol error: everything in flight
                # is dead; the server is closing the link.
                self._fail_outstanding(TransportError(err.message))
                return
            future = self._replies.pop(err.request_id, None)
            if future is not None and not future.done():
                future.set_exception(TransportError(err.message))
            return
        else:
            raise WireFormatError(f"unexpected server frame tag 0x{tag:02x}")
        future = self._replies.pop(msg.request_id, None)
        if future is not None and not future.done():
            future.set_result(msg)

    def _fail_outstanding(self, exc: Exception) -> None:
        for future in self._replies.values():
            if not future.done():
                future.set_exception(exc)
        self._replies.clear()
        for job in self._jobs.values():
            if not job.future.done():
                job.future.set_exception(exc)

    async def _request(self, message: bytes, request_id: int):
        if self._closed:
            raise TransportError("client is closed")
        future = self._loop.create_future()
        self._replies[request_id] = future
        try:
            await write_frame(self._writer, message, self._max_frame)
        except BaseException:
            # The request never left: unregister its reply future so it
            # cannot linger (and warn about an unretrieved exception) at
            # connection teardown.
            self._replies.pop(request_id, None)
            future.cancel()
            raise
        return await future

    # -- API -----------------------------------------------------------

    async def open_session(
        self,
        tenant: str,
        params: bytes | BfvParameters,
        *,
        public_key: bytes | None = None,
        relin_key: bytes | None = None,
        galois_keys: tuple[bytes, ...] = (),
    ) -> str:
        """Open (or rejoin) the tenant's session for a parameter set."""
        if isinstance(params, BfvParameters):
            params = serialize_params(params)
        rid = next(self._request_ids)
        reply = await self._request(encode_open_session(OpenSessionMsg(
            request_id=rid, tenant=tenant, params=bytes(params),
            public_key=public_key, relin_key=relin_key,
            galois_keys=tuple(bytes(g) for g in galois_keys),
        )), rid)
        return reply.session_id

    async def submit(
        self,
        session_id: str,
        kind: JobKind | str,
        operands=(),
        *,
        steps: int = 0,
        backend: str = "",
        on_done: DoneCallback | None = None,
    ) -> str:
        """Queue a raw-op job; returns its job id.

        The submission subscribes to the job's completion event, so a
        later ``await result(job_id)`` never polls, and ``on_done`` (if
        given) fires with the :class:`EventMsg` the moment the server
        pushes it.
        """
        kind_value = kind.value if isinstance(kind, JobKind) else str(kind)
        rid = next(self._request_ids)
        reply: StatusMsg = await self._request(encode_submit(SubmitMsg(
            request_id=rid, session_id=session_id, kind=kind_value,
            operands=_wire_operands(operands),
            steps=steps, backend=backend, subscribe=True,
        )), rid)
        job = self._jobs.setdefault(reply.job_id, _ClientJob(self._loop))
        if on_done is not None:
            job.add_callback(on_done)
        return reply.job_id

    async def submit_circuit(
        self,
        session_id: str,
        circuit: Circuit | bytes,
        inputs=(),
        *,
        backend: str = "",
        on_done: DoneCallback | None = None,
    ) -> str:
        """Queue a whole app circuit; returns its job id.

        ``circuit`` may be a built :class:`~repro.service.circuits.Circuit`
        or its pre-serialized wire bytes; ``inputs`` bind positionally to
        the circuit's named inputs (wire bytes or Ciphertext objects).
        ``await result(job_id)`` then yields the framed named-output map
        — decode it with
        :func:`~repro.service.serialization.deserialize_circuit_outputs`.
        """
        wire_circuit = (
            bytes(circuit) if isinstance(circuit, (bytes, bytearray))
            else serialize_circuit(circuit)
        )
        rid = next(self._request_ids)
        reply: StatusMsg = await self._request(encode_submit_circuit(
            SubmitCircuitMsg(
                request_id=rid, session_id=session_id, circuit=wire_circuit,
                operands=_wire_operands(inputs), backend=backend,
                subscribe=True,
            )
        ), rid)
        job = self._jobs.setdefault(reply.job_id, _ClientJob(self._loop))
        if on_done is not None:
            job.add_callback(on_done)
        return reply.job_id

    async def result(self, job_id: str) -> bytes:
        """Await the job's completion event; returns the result bytes.

        Raises :class:`JobFailedError` if the job failed server-side.
        """
        try:
            job = self._jobs[job_id]
        except KeyError:
            raise KeyError(
                f"job {job_id!r} was not submitted on this client"
            ) from None
        event = await asyncio.shield(job.future)
        if event.status != "done":
            raise JobFailedError(job_id, event.error or "unknown failure")
        return event.payload

    async def status(self, job_id: str) -> str:
        """Ask the server for a job's current status (read-only)."""
        rid = next(self._request_ids)
        reply: StatusMsg = await self._request(encode_status(StatusMsg(
            request_id=rid, job_id=job_id
        )), rid)
        return reply.status

    async def fetch_result(self, job_id: str) -> bytes:
        """Request a job's result explicitly (RESULT frame).

        Useful for jobs another connection submitted, or after a missed
        event; the server answers when the job completes.
        """
        rid = next(self._request_ids)
        reply: ResultMsg = await self._request(encode_result(ResultMsg(
            request_id=rid, job_id=job_id
        )), rid)
        if reply.status != "done":
            raise JobFailedError(job_id, reply.error or "unknown failure")
        return reply.payload

    async def stats(self) -> str:
        """Fetch the server's metrics as Prometheus exposition text."""
        rid = next(self._request_ids)
        reply: StatsMsg = await self._request(
            encode_stats(StatsMsg(request_id=rid)), rid
        )
        return reply.text

    async def trace(self, job_id: str) -> TraceMsg:
        """Fetch a job's span tree (any job id the server knows).

        The reply's ``spans`` are ``(phase, parent, start, end)`` tuples;
        a tracing-off server answers with zero spans. Unknown job ids
        raise :class:`TransportError` (the server's ERROR frame).
        """
        rid = next(self._request_ids)
        return await self._request(
            encode_trace(TraceMsg(request_id=rid, job_id=job_id)), rid
        )

    def events_received(self, job_id: str) -> int:
        """How many completion events arrived for a job (expected: 1)."""
        job = self._jobs.get(job_id)
        return 0 if job is None else job.events

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncFheClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()


class FheClient:
    """Synchronous facade over :class:`AsyncFheClient`.

    Hosts a private event loop on a daemon thread so ordinary code (and
    the benchmarks) can drive a remote pool without touching asyncio::

        with FheClient(host, port) as client:
            sid = client.open_session("acme", params_bytes, relin_key=rk)
            job = client.submit(sid, "multiply", (a_bytes, b_bytes))
            wire = client.result(job)   # parks on the completion event
            app = client.submit_circuit(sid, model.to_circuit(batch=4), cts)
            outputs = client.result(app)  # framed named-output map

    ``on_done`` callbacks run on the client's loop thread.
    """

    def __init__(self, host: str, port: int, *,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 timeout: float | None = 120.0):
        self._timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="fhe-client", daemon=True
        )
        self._thread.start()
        try:
            self._client: AsyncFheClient = self._run(
                AsyncFheClient.connect(host, port, max_frame=max_frame)
            )
        except BaseException:
            self._stop_loop()
            raise

    def _run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            self._timeout
        )

    def open_session(self, tenant, params, *, public_key=None,
                     relin_key=None, galois_keys=()) -> str:
        return self._run(self._client.open_session(
            tenant, params, public_key=public_key, relin_key=relin_key,
            galois_keys=galois_keys,
        ))

    def submit(self, session_id, kind, operands=(), *, steps=0, backend="",
               on_done: DoneCallback | None = None) -> str:
        return self._run(self._client.submit(
            session_id, kind, operands, steps=steps, backend=backend,
            on_done=on_done,
        ))

    def submit_circuit(self, session_id, circuit, inputs=(), *, backend="",
                       on_done: DoneCallback | None = None) -> str:
        return self._run(self._client.submit_circuit(
            session_id, circuit, inputs, backend=backend, on_done=on_done,
        ))

    def result(self, job_id: str) -> bytes:
        return self._run(self._client.result(job_id))

    def status(self, job_id: str) -> str:
        return self._run(self._client.status(job_id))

    def fetch_result(self, job_id: str) -> bytes:
        return self._run(self._client.fetch_result(job_id))

    def stats(self) -> str:
        return self._run(self._client.stats())

    def trace(self, job_id: str) -> TraceMsg:
        return self._run(self._client.trace(job_id))

    def events_received(self, job_id: str) -> int:
        return self._client.events_received(job_id)

    def close(self) -> None:
        if self._loop.is_closed():
            return
        try:
            self._run(self._client.aclose())
        finally:
            self._stop_loop()

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()

    def __enter__(self) -> "FheClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
