"""CoFHEE reproduction: a co-processor for FHE execution, in Python.

A complete reproduction of "CoFHEE: A Co-processor for Fully Homomorphic
Encryption Execution" (DATE 2023, arXiv:2204.08742v3) — the cycle-level
chip model, the polynomial/NTT/RNS and BFV substrates, the SEAL/CPU and
related-ASIC baselines, the end-to-end applications, the physical-design
models, and the verification flow. See README.md for the tour, DESIGN.md
for the system inventory, and EXPERIMENTS.md for the paper-vs-model record.

The most common entry points are re-exported here::

    from repro import CoFHEE, CofheeDriver            # the chip + host API
    from repro import Bfv, BfvParameters              # the FHE scheme
    from repro import NttContext, ntt_friendly_prime  # the math layer
"""

from repro.bfv import Bfv, BfvParameters
from repro.core import CoFHEE, CofheeDriver, TimingModel
from repro.polymath import NttContext, PolynomialRing, RnsBasis, ntt_friendly_prime

__version__ = "1.0.0"

__all__ = [
    "Bfv",
    "BfvParameters",
    "CoFHEE",
    "CofheeDriver",
    "NttContext",
    "PolynomialRing",
    "RnsBasis",
    "TimingModel",
    "__version__",
    "ntt_friendly_prime",
]
