"""Plaintext encoders: scalar/integer encoding and SIMD batching.

The end-to-end applications (Section VI-C) pack many values per ciphertext:
CryptoNets batches inference inputs, logistic regression packs feature
vectors. :class:`BatchEncoder` provides the standard CRT/SIMD packing (the
plaintext modulus ``t`` is chosen ``t === 1 mod 2n`` so the plaintext ring
splits into ``n`` independent slots via the same negacyclic NTT the
ciphertext side uses). :class:`IntegerEncoder` is the simple signed-integer
polynomial encoding for scalar work.
"""

from __future__ import annotations

from typing import Sequence

from repro.bfv.params import BfvParameters
from repro.polymath.ntt import NttContext
from repro.polymath.poly import Polynomial, PolynomialRing


class BatchEncoder:
    """SIMD slot packing over ``Z_t[x]/(x^n+1)`` with ``t === 1 (mod 2n)``.

    Encoding is the *inverse* negacyclic NTT over the plaintext modulus:
    slot values are the evaluations of the plaintext polynomial at the odd
    powers of ``psi_t``, so slot-wise add/multiply of encodings matches the
    ring add/multiply of the underlying polynomials — the property that
    makes one homomorphic op act on ``n`` data items at once.
    """

    def __init__(self, params: BfvParameters):
        if (params.t - 1) % (2 * params.n) != 0:
            raise ValueError(
                f"plaintext modulus {params.t} does not support batching for "
                f"n = {params.n} (need t === 1 mod 2n)"
            )
        self.params = params
        self.ring = PolynomialRing(params.n, params.t)
        self._ctx = NttContext(params.n, params.t)

    @property
    def slot_count(self) -> int:
        return self.params.n

    def encode(self, values: Sequence[int]) -> Polynomial:
        """Pack up to ``n`` integers (mod t) into a plaintext polynomial."""
        if len(values) > self.params.n:
            raise ValueError(f"too many values ({len(values)}) for {self.params.n} slots")
        slots = [v % self.params.t for v in values]
        slots += [0] * (self.params.n - len(slots))
        return self.ring(self._ctx.inverse(slots))

    def decode(self, plaintext: Polynomial) -> list[int]:
        """Unpack a plaintext polynomial back into its slot values."""
        if plaintext.ring != self.ring:
            raise ValueError("plaintext not in the batching ring")
        return self._ctx.forward(list(plaintext.coeffs))

    def decode_signed(self, plaintext: Polynomial) -> list[int]:
        """Decode with slots lifted to the symmetric range (-t/2, t/2]."""
        t = self.params.t
        half = t // 2
        return [v - t if v > half else v for v in self.decode(plaintext)]


class IntegerEncoder:
    """Signed integer <-> constant-ish polynomial encoding (base-B digits).

    Encodes an integer as a low-degree polynomial with digits in a small
    balanced base so that sums/products of a few encodings decode correctly
    by evaluating at ``x = base``. The scalar weights of the CryptoNets /
    logistic-regression models are encoded this way (or, for base ``t``,
    as plain constants — the chip's ``CMODMUL`` path).
    """

    def __init__(self, params: BfvParameters, base: int = 2):
        if base < 2:
            raise ValueError(f"base must be >= 2, got {base}")
        self.params = params
        self.base = base
        self.ring = PolynomialRing(params.n, params.t, allow_non_ntt=True)

    def encode(self, value: int) -> Polynomial:
        """Encode a signed integer as balanced base-``base`` digits."""
        coeffs = [0] * self.params.n
        v = value
        i = 0
        half = self.base // 2
        while v != 0:
            if i >= self.params.n:
                raise ValueError(f"integer {value} too large to encode")
            digit = v % self.base
            v //= self.base
            if digit > half:
                digit -= self.base
                v += 1
            coeffs[i] = digit % self.params.t
            i += 1
        return self.ring(coeffs)

    def decode(self, plaintext: Polynomial) -> int:
        """Decode by evaluating the centered polynomial at ``x = base``."""
        t = self.params.t
        half = t // 2
        acc = 0
        for c in reversed(plaintext.coeffs):
            signed = c - t if c > half else c
            acc = acc * self.base + signed
        return acc


class ScalarEncoder:
    """Degenerate encoder mapping an integer mod t to a constant polynomial.

    This is the encoding that pairs with the chip's ``CMODMUL`` (constant
    multiply) instruction: multiplying a ciphertext by a constant plaintext
    needs no NTT at all.
    """

    def __init__(self, params: BfvParameters):
        self.params = params
        self.ring = PolynomialRing(params.n, params.t, allow_non_ntt=True)

    def encode(self, value: int) -> Polynomial:
        return self.ring([value % self.params.t])

    def decode(self, plaintext: Polynomial) -> int:
        if any(c for c in plaintext.coeffs[1:]):
            raise ValueError("plaintext is not a constant polynomial")
        return plaintext.coeffs[0]
