"""BFV fully homomorphic encryption scheme (Brakerski/Fan-Vercauteren).

This is the scheme the paper evaluates (Section II-B): plaintexts live in
``Z_t[x]/(x^n + 1)``, ciphertexts in ``Z_q[x]/(x^n + 1)``, and the
homomorphic multiplication is the Eq. 4 tensor whose polynomial arithmetic
CoFHEE accelerates. The implementation is a faithful textbook BFV —
key generation, encryption (paper Eqs. 2-3), decryption, homomorphic
add/sub/multiply, relinearization via base-T digit decomposition, SIMD
batching, and noise-budget tracking — sufficient to run the paper's
end-to-end applications (CryptoNets-style inference, logistic regression)
on top of either the software baseline or the chip model.
"""

from repro.bfv.params import SEAL_PRESETS, BfvParameters
from repro.bfv.keys import KeySet, PublicKey, RelinKey, SecretKey
from repro.bfv.scheme import Bfv, Ciphertext
from repro.bfv.encoder import BatchEncoder, IntegerEncoder
from repro.bfv.noise import NoiseModel, security_level_bits
from repro.bfv.rotation import RotationEngine
from repro.bfv.sampling import (
    CenteredBinomialSampler,
    DiscreteGaussianSampler,
    TernarySampler,
)

__all__ = [
    "Bfv",
    "BatchEncoder",
    "BfvParameters",
    "CenteredBinomialSampler",
    "Ciphertext",
    "DiscreteGaussianSampler",
    "IntegerEncoder",
    "KeySet",
    "NoiseModel",
    "PublicKey",
    "RelinKey",
    "RotationEngine",
    "SEAL_PRESETS",
    "SecretKey",
    "TernarySampler",
    "security_level_bits",
]
