"""BFV key material: secret, public, and relinearization keys."""

from __future__ import annotations

from dataclasses import dataclass

from repro.polymath.poly import Polynomial


@dataclass(frozen=True)
class SecretKey:
    """Ternary secret polynomial ``s``."""

    s: Polynomial


@dataclass(frozen=True)
class PublicKey:
    """Encryption key ``kp = (kp1, kp2)`` of paper Eqs. 2-3.

    ``kp1 = -(a*s + e) mod q`` and ``kp2 = a`` for uniform ``a`` and small
    ``e``, so that ``kp1 + kp2*s`` is small.
    """

    kp1: Polynomial
    kp2: Polynomial


@dataclass(frozen=True)
class RelinKey:
    """Relinearization (key-switching) key for ``s**2``, base-T decomposed.

    ``rows[i] = (b_i, a_i)`` with ``b_i = -(a_i*s + e_i) + T**i * s**2``;
    the digit base is ``T = 2**digit_bits`` and there are
    ``ceil(log q / digit_bits)`` rows. Smaller digits mean lower noise but
    more rows — i.e. more NTT work per relinearization, the knob the
    application cost model (Table X) exposes.
    """

    rows: tuple[tuple[Polynomial, Polynomial], ...]
    digit_bits: int

    @property
    def num_digits(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class KeySet:
    """Convenience bundle produced by :meth:`repro.bfv.Bfv.keygen`."""

    secret: SecretKey
    public: PublicKey
    relin: RelinKey | None = None
