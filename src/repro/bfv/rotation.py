"""Galois automorphisms and SIMD slot rotation for BFV.

Real CryptoNets-style pipelines need to *sum across slots* (e.g. the dot
product inside a dense layer), which BFV does with Galois rotations: the
automorphism ``x -> x^g`` permutes the batching slots, and key switching
with a Galois key brings the ciphertext back under the original secret.
The paper's op counts fold these into its ct*ct/relin totals; this module
supplies the primitive so the functional miniatures can do genuine
all-slots reductions.

Slot layout: for ``t === 1 (mod 2n)`` the ``n`` slots form two rings of
``n/2`` (indexed by powers of 3 modulo 2n); ``rotate_rows`` rotates within
each half and ``rotate_columns`` swaps the halves — SEAL's terminology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bfv.keys import SecretKey
from repro.bfv.scheme import Bfv, Ciphertext
from repro.bfv.sampling import sample_uniform
from repro.polymath.poly import Polynomial


@dataclass(frozen=True)
class GaloisKey:
    """Key-switching key for one automorphism exponent ``g``."""

    exponent: int
    rows: tuple[tuple[Polynomial, Polynomial], ...]
    digit_bits: int


def apply_automorphism(poly: Polynomial, exponent: int) -> Polynomial:
    """Map ``p(x) -> p(x^g)`` in ``Z_q[x]/(x^n + 1)``.

    Monomial ``x^i`` maps to ``x^(i*g mod 2n)`` with a sign flip when the
    reduced exponent crosses ``n`` (since ``x^n = -1``).
    """
    ring = poly.ring
    n, q = ring.n, ring.q
    if exponent % 2 == 0 or not 0 < exponent < 2 * n:
        raise ValueError(f"automorphism exponent must be odd in (0, 2n), got {exponent}")
    out = [0] * n
    for i, c in enumerate(poly.coeffs):
        if not c:
            continue
        j = i * exponent % (2 * n)
        if j < n:
            out[j] = (out[j] + c) % q
        else:
            out[j - n] = (out[j - n] - c) % q
    return ring(out)


class RotationEngine:
    """Galois-key generation and slot rotation bound to a scheme instance."""

    #: Generator of the slot-permutation group (SEAL's choice).
    GENERATOR = 3

    def __init__(self, bfv: Bfv, secret: SecretKey, digit_bits: int = 16):
        self.bfv = bfv
        self.params = bfv.params
        self._secret = secret
        self.digit_bits = digit_bits
        self._keys: dict[int, GaloisKey] = {}

    # -- key generation -----------------------------------------------------

    def galois_key(self, exponent: int) -> GaloisKey:
        """Generate (and cache) the key-switching key for ``x -> x^g``.

        Rows satisfy ``b_i = -(a_i s + e_i) + T^i s(x^g)`` so switching a
        ciphertext that decrypts under ``s(x^g)`` back to ``s``.
        """
        if exponent in self._keys:
            return self._keys[exponent]
        bfv = self.bfv
        n, q = self.params.n, self.params.q
        s_g = apply_automorphism(self._secret.s, exponent)
        num_digits = -(-q.bit_length() // self.digit_bits)
        rows = []
        power = 1
        for _ in range(num_digits):
            a_i = bfv.ring(sample_uniform(bfv._rng, n, q))
            e_i = bfv.ring(bfv._gaussian.sample(n))
            b_i = -(bfv._exact_mul(a_i, self._secret.s) + e_i) + s_g.scalar_mul(power)
            rows.append((b_i, a_i))
            power = (power << self.digit_bits) % q
        key = GaloisKey(exponent=exponent, rows=tuple(rows),
                        digit_bits=self.digit_bits)
        self._keys[exponent] = key
        return key

    # -- rotation -------------------------------------------------------------

    def apply_galois(self, ct: Ciphertext, exponent: int) -> Ciphertext:
        """Apply ``x -> x^g`` to a 2-component ciphertext and key-switch."""
        return apply_galois_with_key(self.bfv, ct, self.galois_key(exponent))

    def rotate_rows(self, ct: Ciphertext, steps: int) -> Ciphertext:
        """Rotate both slot half-rings by ``steps`` positions."""
        half = self.params.n // 2
        steps %= half
        if steps == 0:
            return ct.copy()
        exponent = pow(self.GENERATOR, steps, 2 * self.params.n)
        return self.apply_galois(ct, exponent)

    def rotate_columns(self, ct: Ciphertext) -> Ciphertext:
        """Swap the two slot half-rings (``g = 2n - 1``)."""
        return self.apply_galois(ct, 2 * self.params.n - 1)

    def sum_all_slots(self, ct: Ciphertext) -> Ciphertext:
        """Reduce: every slot ends up holding the sum of all slots.

        log2(n/2) row rotations + one column swap — the dense-layer
        reduction pattern CryptoNets uses.
        """
        half = self.params.n // 2
        acc = ct
        step = 1
        while step < half:
            acc = self.bfv.add(acc, self.rotate_rows(acc, step))
            step <<= 1
        return self.bfv.add(acc, self.rotate_columns(acc))


def apply_galois_with_key(bfv: Bfv, ct: Ciphertext, key: GaloisKey) -> Ciphertext:
    """Rotate with an explicit (e.g. client-uploaded) Galois key.

    Unlike :meth:`RotationEngine.apply_galois` this needs no secret key, so
    the serving layer can rotate tenant ciphertexts using only the
    evaluation keys registered with the session: apply ``x -> x^g`` to both
    components, then key-switch ``c2(x^g)`` back under ``s`` by
    digit-decomposing against the key rows.
    """
    if ct.size != 2:
        raise ValueError("rotate a 2-component ciphertext (relinearize first)")
    exponent = key.exponent
    c1g = apply_automorphism(ct.polys[0], exponent)
    c2g = apply_automorphism(ct.polys[1], exponent)
    # Key-switch c2g from s(x^g) to s: digit-decompose and fold.
    digits = bfv._decompose_digits(c2g, _as_relin(key))
    new_c1, new_c2 = c1g, bfv.ring.zero()
    for d, (b_i, a_i) in zip(digits, key.rows):
        new_c1 = new_c1 + bfv._exact_mul(d, b_i)
        new_c2 = new_c2 + bfv._exact_mul(d, a_i)
    return Ciphertext([new_c1, new_c2], bfv.params)


def slot_permutation(encoder, exponent: int) -> list[int]:
    """Where the automorphism ``x -> x^g`` moves each batching slot.

    Returns ``perm`` with ``new_slots[i] == old_slots[perm[i]]``. Computed
    purely from the encoder's evaluation points (no keys, no ciphertexts):
    slot ``i`` evaluates the plaintext at point ``v_i`` (the decode of the
    monomial ``x``), and ``p(x^g)`` evaluated at ``v_i`` is ``p(v_i^g)`` —
    so the new slot ``i`` holds whichever old slot evaluated at
    ``v_i^g mod t``. This is the plaintext ground truth the rotation tests
    check the keyed ciphertext path against, and what the packed app
    compilers use to aim a value at a specific slot.
    """
    t = encoder.params.t
    points = encoder.decode(encoder.ring([0, 1]))  # v_i = slot i's point
    index_of = {v: i for i, v in enumerate(points)}
    return [index_of[pow(v, exponent, t)] for v in points]


def rotation_plan(n: int) -> dict[int, tuple[tuple[str, int], ...]]:
    """Circuit-step recipe for every reachable slot-permutation element.

    The rotation group ``{±3^k mod 2n}`` acts simply transitively on the
    ``n`` slots; circuits expose its generators as ``rotate_rows(k)``
    (``g = 3^k``) and ``rotate_columns`` (``g = 2n-1``). Maps each group
    element ``g`` to the step sequence realizing it: ``()`` for the
    identity, one step for a pure row rotation or the column swap, two
    for their composition. Used by the packed compilers to move a masked
    value from slot 0 to an arbitrary target slot.
    """
    m = 2 * n
    plan: dict[int, tuple[tuple[str, int], ...]] = {}
    for k in range(n // 2):
        g = pow(RotationEngine.GENERATOR, k, m)
        rows: tuple[tuple[str, int], ...] = (("rows", k),) if k else ()
        plan.setdefault(g, rows)
        plan.setdefault((m - 1) * g % m, (("cols", 0),) + rows)
    return plan


def _as_relin(key: GaloisKey):
    """Adapter: reuse the scheme's digit decomposition via a RelinKey shim."""
    from repro.bfv.keys import RelinKey

    return RelinKey(rows=key.rows, digit_bits=key.digit_bits)
