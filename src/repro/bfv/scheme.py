"""The BFV scheme: keygen, encryption, decryption, homomorphic evaluation.

Implements exactly the operations the paper builds on:

* encryption per Eqs. 2-3 (``c1 = kp1*u + e1 + Delta*m``, ``c2 = kp2*u + e2``);
* homomorphic multiplication per the Eq. 4 tensor — the polynomial products
  are computed *over the integers* (centered lift, exact negacyclic product
  via an auxiliary-prime NTT) and then scaled by ``t/q`` with rounding;
* relinearization by base-T digit decomposition, whose per-digit NTT work
  is what makes ``EvalMult`` "the slowest operation" (Section II-C) and the
  dominant term in the Table X application model.

The scheme is *functional* ground truth: the cycle-level chip model and the
software-baseline cost model both defer to it for correctness checks.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.bfv.keys import KeySet, PublicKey, RelinKey, SecretKey
from repro.bfv.params import BfvParameters
from repro.bfv.sampling import DiscreteGaussianSampler, TernarySampler, sample_uniform
from repro.polymath.ntt import NttContext
from repro.polymath.poly import Polynomial, PolynomialRing
from repro.polymath.primes import ntt_friendly_prime


@dataclass
class Ciphertext:
    """A BFV ciphertext: a list of polynomials over ``Z_q[x]/(x^n+1)``.

    Fresh ciphertexts have two components ``(c1, c2)``; the Eq. 4 tensor
    yields three ``(cc1, cc2, cc3)`` until relinearization maps it back to
    two. Decryption of a k-component ciphertext evaluates
    ``sum_i c_i * s**(i)`` (``i`` from 0).
    """

    polys: list[Polynomial]
    params: BfvParameters

    @property
    def size(self) -> int:
        return len(self.polys)

    def __iter__(self):
        return iter(self.polys)

    def copy(self) -> "Ciphertext":
        return Ciphertext(list(self.polys), self.params)

    def to_bytes(self) -> bytes:
        """Export to the versioned wire format (the serving-layer hook)."""
        from repro.service.serialization import serialize_ciphertext

        return serialize_ciphertext(self)

    @classmethod
    def from_bytes(cls, data: bytes, params: BfvParameters) -> "Ciphertext":
        """Decode wire bytes, checking the params digest for compatibility."""
        from repro.service.serialization import deserialize_ciphertext

        return deserialize_ciphertext(data, params)


class Bfv:
    """BFV scheme instance bound to a parameter set and a seeded RNG.

    Args:
        params: the BFV parameter set.
        seed: RNG seed (every experiment in the reproduction is seeded).
        multiplier: optional drop-in exact negacyclic multiplier (an object
            with ``multiply(a_centered, b_centered) -> list[int]``), e.g.
            :class:`repro.polymath.fastntt.RnsExactMultiplier` for the
            serving layer's vectorized backend. When omitted the scheme
            auto-selects: the batched-engine CRT multiplier where a
            word-sized auxiliary basis exists for ``n`` (the common case),
            with a transparent fallback to the exact pure-Python
            auxiliary-prime multiplier. Every multiplier computes the same
            exact integer product, so results are bit-identical regardless
            of the choice.
    """

    def __init__(self, params: BfvParameters, seed: int = 0, multiplier=None):
        self.params = params
        self.ring = PolynomialRing(params.n, params.q, allow_non_ntt=True)
        self._rng = random.Random(seed)
        self._ternary = TernarySampler(self._rng)
        self._gaussian = DiscreteGaussianSampler(self._rng, params.sigma)
        self._mult_ctx = multiplier or _default_multiplier(params.n, params.q)
        self._tensor_ok: bool | None = None
        # id(relin) -> (relin ref, forward-NTT b rows, forward-NTT a rows);
        # the held reference keeps the id stable for the cache's lifetime.
        self._relin_fwd_cache: dict[int, tuple] = {}

    @property
    def multiplier_kind(self) -> str:
        """Which exact multiplier backs this instance (class name)."""
        return type(self._mult_ctx).__name__

    # ------------------------------------------------------------------
    # Key generation
    # ------------------------------------------------------------------

    def keygen(self, relin_digit_bits: int | None = 22) -> KeySet:
        """Generate secret, public, and (optionally) relinearization keys.

        Args:
            relin_digit_bits: digit width for the relin key's base-T
                decomposition; ``None`` skips relin-key generation.
        """
        n, q = self.params.n, self.params.q
        s = self.ring(self._ternary.sample(n))
        a = self.ring(sample_uniform(self._rng, n, q))
        e = self.ring(self._gaussian.sample(n))
        kp1 = -(self._exact_mul(a, s) + e)
        public = PublicKey(kp1=kp1, kp2=a)
        secret = SecretKey(s=s)
        relin = None
        if relin_digit_bits is not None:
            relin = self._make_relin_key(s, relin_digit_bits)
        return KeySet(secret=secret, public=public, relin=relin)

    def _make_relin_key(self, s: Polynomial, digit_bits: int) -> RelinKey:
        if digit_bits < 1:
            raise ValueError(f"digit_bits must be >= 1, got {digit_bits}")
        n, q = self.params.n, self.params.q
        s2 = self._exact_mul(s, s)
        num_digits = -(-q.bit_length() // digit_bits)
        rows = []
        power = 1
        for _ in range(num_digits):
            a_i = self.ring(sample_uniform(self._rng, n, q))
            e_i = self.ring(self._gaussian.sample(n))
            b_i = -(self._exact_mul(a_i, s) + e_i) + s2.scalar_mul(power)
            rows.append((b_i, a_i))
            power = (power << digit_bits) % q
        return RelinKey(rows=tuple(rows), digit_bits=digit_bits)

    # ------------------------------------------------------------------
    # Encrypt / decrypt (paper Eqs. 2-3)
    # ------------------------------------------------------------------

    def encrypt(self, plaintext: Polynomial, public: PublicKey) -> Ciphertext:
        """Encrypt a plaintext polynomial (coefficients mod t)."""
        self._check_plaintext(plaintext)
        n = self.params.n
        u = self.ring(self._ternary.sample(n))
        e1 = self.ring(self._gaussian.sample(n))
        e2 = self.ring(self._gaussian.sample(n))
        delta_m = self._lift_plaintext(plaintext).scalar_mul(self.params.delta)
        c1 = self._exact_mul(public.kp1, u) + e1 + delta_m
        c2 = self._exact_mul(public.kp2, u) + e2
        return Ciphertext([c1, c2], self.params)

    def encrypt_zero(self, public: PublicKey) -> Ciphertext:
        """Encrypt the zero polynomial (useful for randomization)."""
        zero = PolynomialRing(self.params.n, self.params.t, allow_non_ntt=True).zero()
        return self.encrypt(zero, public)

    def decrypt(self, ct: Ciphertext, secret: SecretKey) -> Polynomial:
        """Decrypt: ``m = round(t * (sum_i c_i s^i) / q) mod t``."""
        phase = self._phase(ct, secret)
        t, q = self.params.t, self.params.q
        pt_ring = PolynomialRing(self.params.n, t, allow_non_ntt=True)
        coeffs = []
        for c in phase.centered():
            coeffs.append(_round_div(t * c, q) % t)
        return pt_ring(coeffs)

    def noise_budget(self, ct: Ciphertext, secret: SecretKey) -> int:
        """Remaining invariant-noise budget in bits (0 = decryption at risk).

        Computed SEAL-style: the budget is ``log2(q / (2t)) - log2 ||w||``
        where ``w`` is the rounding residue of the phase. It shrinks with
        every homomorphic operation and reaches 0 right before decryption
        failures begin.
        """
        phase = self._phase(ct, secret)
        t, q = self.params.t, self.params.q
        worst = 0
        for c in phase.centered():
            m = _round_div(t * c, q)
            w = abs(t * c - m * q)  # |t*c - round(t*c/q)*q| <= q/2 * t_noise
            worst = max(worst, w)
        if worst == 0:
            return max(0, q.bit_length() - t.bit_length() - 1)
        budget = (q.bit_length() - 1) - (worst.bit_length() - 1) - 1
        return max(0, budget)

    def _phase(self, ct: Ciphertext, secret: SecretKey) -> Polynomial:
        """``sum_i c_i * s**i`` over ``R_q`` (the decryption phase)."""
        acc = ct.polys[0]
        s_pow = secret.s
        for c in ct.polys[1:]:
            acc = acc + self._exact_mul(c, s_pow)
            s_pow = self._exact_mul(s_pow, secret.s)
        return acc

    # ------------------------------------------------------------------
    # Homomorphic operations
    # ------------------------------------------------------------------

    def add(self, ca: Ciphertext, cb: Ciphertext) -> Ciphertext:
        """Homomorphic addition (componentwise, pads to the longer size)."""
        self._check_pair(ca, cb)
        size = max(ca.size, cb.size)
        zero = self.ring.zero()
        polys = []
        for i in range(size):
            pa = ca.polys[i] if i < ca.size else zero
            pb = cb.polys[i] if i < cb.size else zero
            polys.append(pa + pb)
        return Ciphertext(polys, self.params)

    def sub(self, ca: Ciphertext, cb: Ciphertext) -> Ciphertext:
        """Homomorphic subtraction."""
        self._check_pair(ca, cb)
        size = max(ca.size, cb.size)
        zero = self.ring.zero()
        polys = []
        for i in range(size):
            pa = ca.polys[i] if i < ca.size else zero
            pb = cb.polys[i] if i < cb.size else zero
            polys.append(pa - pb)
        return Ciphertext(polys, self.params)

    def multiply(self, ca: Ciphertext, cb: Ciphertext) -> Ciphertext:
        """Homomorphic multiplication: the Eq. 4 tensor.

        ``(cc1, cc2, cc3) = round(t/q * (ca1*cb1, ca1*cb2 + ca2*cb1,
        ca2*cb2))`` with the polynomial products taken over the integers
        (centered representatives) before scaling.
        """
        self._check_pair(ca, cb)
        if ca.size != 2 or cb.size != 2:
            raise ValueError("EvalMult expects 2-component ciphertexts; relinearize first")
        a1, a2 = (p.centered() for p in ca.polys)
        b1, b2 = (p.centered() for p in cb.polys)
        eng = self._tensor_engine()
        if eng is not None:
            import numpy as np

            y0, y1, y2 = eng.tensor(
                eng.decompose(a1),
                eng.decompose(a2),
                eng.decompose(b1),
                eng.decompose(b2),
            )
            rows = eng.round_scale(
                np.stack((y0, y1, y2)), self.params.t, self.params.q
            )
            return Ciphertext(
                [Polynomial.from_canonical(self.ring, r) for r in rows],
                self.params,
            )
        m11 = self._mult_ctx.multiply(a1, b1)
        m12 = self._mult_ctx.multiply(a1, b2)
        m21 = self._mult_ctx.multiply(a2, b1)
        m22 = self._mult_ctx.multiply(a2, b2)
        cross = [x + y for x, y in zip(m12, m21)]
        t, q = self.params.t, self.params.q
        scale = lambda vec: self.ring([_round_div(t * c, q) for c in vec])
        return Ciphertext([scale(m11), scale(cross), scale(m22)], self.params)

    def square(self, ct: Ciphertext) -> Ciphertext:
        """Homomorphic squaring (saves one integer product vs multiply)."""
        if ct.size != 2:
            raise ValueError("square expects a 2-component ciphertext")
        a1, a2 = (p.centered() for p in ct.polys)
        eng = self._tensor_engine()
        if eng is not None:
            import numpy as np

            y0, y1, y2 = eng.tensor_square(eng.decompose(a1), eng.decompose(a2))
            rows = eng.round_scale(
                np.stack((y0, y1, y2)), self.params.t, self.params.q
            )
            return Ciphertext(
                [Polynomial.from_canonical(self.ring, r) for r in rows],
                self.params,
            )
        m11 = self._mult_ctx.multiply(a1, a1)
        m12 = self._mult_ctx.multiply(a1, a2)
        m22 = self._mult_ctx.multiply(a2, a2)
        cross = [2 * x for x in m12]
        t, q = self.params.t, self.params.q
        scale = lambda vec: self.ring([_round_div(t * c, q) for c in vec])
        return Ciphertext([scale(m11), scale(cross), scale(m22)], self.params)

    def multiply_many(
        self, pairs: "list[tuple[Ciphertext, Ciphertext | None]]"
    ) -> list[Ciphertext]:
        """Eq. 4 tensors for a batch of EvalMult/Square jobs in one pass.

        Each pair is ``(ca, cb)``; ``cb is None`` squares ``ca`` (the
        exact integer cross products ``m12`` and ``m21`` coincide, so
        the result is bit-identical to :meth:`square`). With the batched
        engine every job's operand transforms ride one forward pass, one
        inverse covers all tensor components, and one round-scaling pass
        finishes the batch; otherwise falls back to per-job
        multiply/square.
        """
        for ca, cb in pairs:
            if cb is None:
                if ca.size != 2:
                    raise ValueError("square expects a 2-component ciphertext")
            else:
                self._check_pair(ca, cb)
                if ca.size != 2 or cb.size != 2:
                    raise ValueError(
                        "EvalMult expects 2-component ciphertexts; "
                        "relinearize first"
                    )
        eng = self._tensor_engine()
        if eng is None or len(pairs) < 2:
            return [
                self.square(ca) if cb is None else self.multiply(ca, cb)
                for ca, cb in pairs
            ]
        import numpy as np

        ops = []
        for ca, cb in pairs:
            a0, a1 = (eng.decompose(p.centered()) for p in ca.polys)
            if cb is None:
                b0, b1 = a0, a1
            else:
                b0, b1 = (eng.decompose(p.centered()) for p in cb.polys)
            ops.append((a0, a1, b0, b1))
        J = len(pairs)
        tensors = eng.tensor_many(np.asarray(ops, dtype=np.int64))
        rows = eng.round_scale(
            tensors.reshape(3 * J, eng.num_towers, self.params.n),
            self.params.t,
            self.params.q,
        )
        return [
            Ciphertext(
                [
                    Polynomial.from_canonical(self.ring, rows[3 * j + k])
                    for k in range(3)
                ],
                self.params,
            )
            for j in range(J)
        ]

    def relinearize(self, ct: Ciphertext, relin: RelinKey) -> Ciphertext:
        """Map a 3-component ciphertext back to 2 components.

        Decomposes ``cc3`` into base-T digits and folds each digit through
        the corresponding relin-key row — per digit this is one polynomial
        multiplication pair, i.e. the NTT/Hadamard work the chip-side cost
        model charges for relinearization.
        """
        if ct.size == 2:
            return ct.copy()
        if ct.size != 3:
            raise ValueError(f"relinearize expects size-3 ciphertext, got {ct.size}")
        if self.can_batch_relinearize(relin):
            return self.relinearize_many([ct], relin)[0]
        c1, c2, c3 = ct.polys
        digits = self._decompose_digits(c3, relin)
        new_c1, new_c2 = c1, c2
        for d, (b_i, a_i) in zip(digits, relin.rows):
            new_c1 = new_c1 + self._exact_mul(d, b_i)
            new_c2 = new_c2 + self._exact_mul(d, a_i)
        return Ciphertext([new_c1, new_c2], self.params)

    def can_batch_relinearize(self, relin: RelinKey) -> bool:
        """Whether the vectorized key-switch fold is exact for this key.

        True when the scheme's multiplier carries a batched RNS engine
        whose CRT modulus ``P`` dominates the fold bound
        ``D * n * (T - 1) * q/2`` (D digits of width ``T = 2**digit_bits``
        times centered key rows, convolved over ``n`` coefficients) — the
        condition for recovering the integer fold from centered residues.
        """
        eng = getattr(self._mult_ctx, "_engine", None)
        if eng is None:
            return False
        n, q = self.params.n, self.params.q
        bound = (
            relin.num_digits
            * n
            * ((1 << relin.digit_bits) - 1)
            * (q // 2 + 1)
        )
        return bound < eng.modulus // 2

    def prewarm_relin(self, relin: RelinKey) -> None:
        """Build the eval key's NTT-domain row stacks ahead of serving.

        Key upload is the natural place to pay this one-time cost (SEAL
        likewise stores key-switch keys in NTT form): the batched
        key-switch then finds :meth:`_relin_fwd_rows` warm on its first
        job instead of transforming every key row mid-batch. No-op when
        the batched fold is unavailable for this key.
        """
        if self.can_batch_relinearize(relin):
            self._relin_fwd_rows(self._mult_ctx._engine, relin)

    def relinearize_many(
        self, cts: list[Ciphertext], relin: RelinKey
    ) -> list[Ciphertext]:
        """Relinearize a batch of size-3 ciphertexts under one eval key.

        The batched key-switch: every ciphertext's base-T digit
        decomposition rides one forward-NTT pass, the per-digit key-row
        folds accumulate in the NTT domain, and a single inverse pass
        covers both output components of every job. Bit-identical to
        calling :meth:`relinearize` per ciphertext; requires
        :meth:`can_batch_relinearize` (raises ``ValueError`` otherwise).
        Size-2 inputs pass through untouched (copied), matching the
        scalar path.
        """
        import numpy as np

        if not self.can_batch_relinearize(relin):
            raise ValueError(
                "batched relinearization needs an engine-capable multiplier "
                "and an in-bound digit decomposition; use relinearize()"
            )
        for ct in cts:
            if ct.size not in (2, 3):
                raise ValueError(
                    f"relinearize expects size-2/3 ciphertexts, got {ct.size}"
                )
        eng = self._mult_ctx._engine
        work = [(i, ct) for i, ct in enumerate(cts) if ct.size == 3]
        out: list[Ciphertext | None] = [
            ct.copy() if ct.size == 2 else None for ct in cts
        ]
        if not work:
            return out  # type: ignore[return-value]
        fb, fa = self._relin_fwd_rows(eng, relin)
        D = relin.num_digits
        db = relin.digit_bits
        J = len(work)
        stacks = np.concatenate(
            [eng.digit_decompose(ct.polys[2].coeffs, db, D) for _, ct in work]
        )
        fwd = eng.forward(stacks).reshape(J, D, eng.num_towers, self.params.n)
        acc_b = eng.nttdomain_fold(fwd, fb)
        acc_a = eng.nttdomain_fold(fwd, fa)
        vals = eng.centered_values(
            eng.inverse(np.concatenate((acc_b, acc_a)))
        )
        q = self.params.q
        for j, (i, ct) in enumerate(work):
            c1 = np.asarray(ct.polys[0].coeffs, dtype=object)
            c2 = np.asarray(ct.polys[1].coeffs, dtype=object)
            new_c1 = (c1 + vals[j]) % q
            new_c2 = (c2 + vals[J + j]) % q
            out[i] = Ciphertext(
                [
                    Polynomial.from_canonical(self.ring, new_c1.tolist()),
                    Polynomial.from_canonical(self.ring, new_c2.tolist()),
                ],
                self.params,
            )
        return out  # type: ignore[return-value]

    def _relin_fwd_rows(self, eng, relin: RelinKey):
        """Forward-NTT stacks of the relin-key rows, memoized per key.

        Returns ``(fb, fa)``: ``(D, L, n)`` forward transforms of the
        centered ``b_i`` / ``a_i`` rows on ``eng``'s auxiliary basis. The
        cache holds the key object itself so the ``id()`` key stays valid.
        """
        import numpy as np

        cached = self._relin_fwd_cache.get(id(relin))
        if cached is not None and cached[0] is relin:
            return cached[1], cached[2]
        fb = eng.forward(
            np.stack([eng.decompose(b.centered()) for b, _ in relin.rows])
        )
        fa = eng.forward(
            np.stack([eng.decompose(a.centered()) for _, a in relin.rows])
        )
        if len(self._relin_fwd_cache) >= 4:
            self._relin_fwd_cache.pop(next(iter(self._relin_fwd_cache)))
        self._relin_fwd_cache[id(relin)] = (relin, fb, fa)
        return fb, fa

    def _tensor_engine(self):
        """The multiplier's batched engine when the Eq. 4 bound holds.

        The tensor's cross term ``m12 + m21`` doubles the single-product
        bound, so the engine path additionally requires
        ``2 * n * (q/2)**2 < P/2``; the default auxiliary basis is built
        with 4x margin, making this the common case. Returns ``None`` for
        scalar fallback (custom multipliers, wide params).
        """
        eng = getattr(self._mult_ctx, "_engine", None)
        if eng is None:
            return None
        if self._tensor_ok is None:
            n, q = self.params.n, self.params.q
            self._tensor_ok = (
                2 * n * (q // 2 + 1) ** 2 < eng.modulus // 2
            )
        return eng if self._tensor_ok else None

    def multiply_relin(self, ca: Ciphertext, cb: Ciphertext, relin: RelinKey) -> Ciphertext:
        """Convenience: Eq. 4 tensor followed by relinearization."""
        return self.relinearize(self.multiply(ca, cb), relin)

    def add_plain(self, ct: Ciphertext, plaintext: Polynomial) -> Ciphertext:
        """Add a plaintext polynomial: ``c1 += Delta * m``."""
        self._check_plaintext(plaintext)
        delta_m = self._lift_plaintext(plaintext).scalar_mul(self.params.delta)
        polys = list(ct.polys)
        polys[0] = polys[0] + delta_m
        return Ciphertext(polys, self.params)

    def multiply_plain(self, ct: Ciphertext, plaintext: Polynomial) -> Ciphertext:
        """Multiply by a plaintext polynomial (no tensor, no rescale).

        Each ciphertext component is multiplied by the *centered* plaintext
        so small-magnitude messages keep noise growth minimal — this is the
        ``ct*pt`` operation of the Table X application mixes.
        """
        self._check_plaintext(plaintext)
        if all(c == 0 for c in plaintext.coeffs):
            return Ciphertext([self.ring.zero() for _ in ct.polys], self.params)
        lifted = self._lift_plaintext(plaintext)
        polys = [self._exact_mul(p, lifted) for p in ct.polys]
        return Ciphertext(polys, self.params)

    def multiply_scalar(self, ct: Ciphertext, scalar: int) -> Ciphertext:
        """Multiply by an integer scalar mod t (chip op ``CMODMUL``)."""
        s = scalar % self.params.t
        if s > self.params.t // 2:
            s -= self.params.t  # centered lift keeps noise small
        polys = [p.scalar_mul(s) for p in ct.polys]
        return Ciphertext(polys, self.params)

    def negate(self, ct: Ciphertext) -> Ciphertext:
        return Ciphertext([-p for p in ct.polys], self.params)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _exact_mul(self, a: Polynomial, b: Polynomial) -> Polynomial:
        """Negacyclic product in ``R_q`` via the exact integer multiplier."""
        prod = self._mult_ctx.multiply(a.centered(), b.centered())
        return self.ring(prod)

    def _lift_plaintext(self, plaintext: Polynomial) -> Polynomial:
        """Centered lift of a mod-t plaintext into ``R_q``."""
        t = self.params.t
        half = t // 2
        coeffs = [c - t if c > half else c for c in plaintext.coeffs]
        return self.ring(coeffs)

    def _decompose_digits(self, poly: Polynomial, relin: RelinKey) -> list[Polynomial]:
        """Base-T digit decomposition of every coefficient of ``poly``.

        Coefficients must be canonical (``[0, q)``): a negative (centered)
        coefficient would sign-extend under ``c & mask``, yielding digits
        that silently corrupt the relin fold — so it raises instead, the
        same contract :meth:`BatchedRnsEngine.digit_decompose` enforces on
        the vectorized path.
        """
        mask = (1 << relin.digit_bits) - 1
        digit_coeffs: list[list[int]] = [[] for _ in range(relin.num_digits)]
        for c in poly.coeffs:
            if c < 0:
                raise ValueError(
                    "digit decomposition requires canonical coefficients in "
                    "[0, q); got a negative (centered?) coefficient"
                )
            for i in range(relin.num_digits):
                digit_coeffs[i].append(c & mask)
                c >>= relin.digit_bits
        return [self.ring(dc) for dc in digit_coeffs]

    def _check_pair(self, ca: Ciphertext, cb: Ciphertext) -> None:
        if ca.params is not cb.params and ca.params != cb.params:
            raise ValueError("ciphertexts use different parameter sets")

    def _check_plaintext(self, plaintext: Polynomial) -> None:
        if plaintext.ring.n != self.params.n:
            raise ValueError(
                f"plaintext degree {plaintext.ring.n} != scheme degree {self.params.n}"
            )
        if plaintext.ring.q != self.params.t:
            raise ValueError(
                f"plaintext modulus {plaintext.ring.q} != scheme t {self.params.t}"
            )


def _default_multiplier(n: int, q: int):
    """Auto-select the exact negacyclic multiplier for ``(n, q)``.

    Prefers the batched-engine CRT multiplier
    (:class:`~repro.polymath.fastntt.RnsExactMultiplier`) — every tower of
    its word-sized auxiliary basis runs through one vectorized pass — and
    falls back to the pure-Python wide-auxiliary-prime multiplier when no
    qualifying basis exists (or the engine is disabled via
    ``REPRO_ENGINE=off``). Both are exact over the integers, so the choice
    never changes a ciphertext bit.
    """
    from repro.polymath.engine import engine_enabled

    if engine_enabled():
        from repro.polymath.fastntt import RnsExactMultiplier

        try:
            return RnsExactMultiplier(n, q)
        except ValueError:
            pass  # no word-sized auxiliary basis for this degree
    return _ExactMultiplier(n, q)


class _ExactMultiplier:
    """Exact negacyclic product of centered integer polynomials.

    Products in ``EvalMult`` must be taken over the integers before the
    ``t/q`` scaling. Coefficients are bounded by ``n * (q/2)**2``, so an
    NTT over one auxiliary prime wide enough to hold that bound recovers the
    exact integer result from its centered residue.
    """

    def __init__(self, n: int, q: int):
        self.n = n
        # bound on |product coefficient|: n * (q/2)^2; need P > 2*bound.
        bound_bits = 2 * (q.bit_length() - 1) + n.bit_length() + 2
        self.aux_q = ntt_friendly_prime(n, bound_bits + 2)
        self.ctx = NttContext(n, self.aux_q)

    def multiply(self, a_centered: list[int], b_centered: list[int]) -> list[int]:
        """Return the exact integer negacyclic product of centered inputs."""
        p = self.aux_q
        fa = self.ctx.forward([x % p for x in a_centered])
        fb = self.ctx.forward([x % p for x in b_centered])
        prod = [x * y % p for x, y in zip(fa, fb)]
        res = self.ctx.inverse(prod)
        half = p // 2
        return [c - p if c > half else c for c in res]


def _round_div(numerator: int, denominator: int) -> int:
    """Round-half-away-from-zero integer division (the Eq. 4 rounding)."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    if numerator >= 0:
        return (2 * numerator + denominator) // (2 * denominator)
    return -((-2 * numerator + denominator) // (2 * denominator))
