"""The BFV scheme: keygen, encryption, decryption, homomorphic evaluation.

Implements exactly the operations the paper builds on:

* encryption per Eqs. 2-3 (``c1 = kp1*u + e1 + Delta*m``, ``c2 = kp2*u + e2``);
* homomorphic multiplication per the Eq. 4 tensor — the polynomial products
  are computed *over the integers* (centered lift, exact negacyclic product
  via an auxiliary-prime NTT) and then scaled by ``t/q`` with rounding;
* relinearization by base-T digit decomposition, whose per-digit NTT work
  is what makes ``EvalMult`` "the slowest operation" (Section II-C) and the
  dominant term in the Table X application model.

The scheme is *functional* ground truth: the cycle-level chip model and the
software-baseline cost model both defer to it for correctness checks.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.bfv.keys import KeySet, PublicKey, RelinKey, SecretKey
from repro.bfv.params import BfvParameters
from repro.bfv.sampling import DiscreteGaussianSampler, TernarySampler, sample_uniform
from repro.polymath.ntt import NttContext
from repro.polymath.poly import Polynomial, PolynomialRing
from repro.polymath.primes import ntt_friendly_prime


@dataclass
class Ciphertext:
    """A BFV ciphertext: a list of polynomials over ``Z_q[x]/(x^n+1)``.

    Fresh ciphertexts have two components ``(c1, c2)``; the Eq. 4 tensor
    yields three ``(cc1, cc2, cc3)`` until relinearization maps it back to
    two. Decryption of a k-component ciphertext evaluates
    ``sum_i c_i * s**(i)`` (``i`` from 0).
    """

    polys: list[Polynomial]
    params: BfvParameters

    @property
    def size(self) -> int:
        return len(self.polys)

    def __iter__(self):
        return iter(self.polys)

    def copy(self) -> "Ciphertext":
        return Ciphertext(list(self.polys), self.params)

    def to_bytes(self) -> bytes:
        """Export to the versioned wire format (the serving-layer hook)."""
        from repro.service.serialization import serialize_ciphertext

        return serialize_ciphertext(self)

    @classmethod
    def from_bytes(cls, data: bytes, params: BfvParameters) -> "Ciphertext":
        """Decode wire bytes, checking the params digest for compatibility."""
        from repro.service.serialization import deserialize_ciphertext

        return deserialize_ciphertext(data, params)


class Bfv:
    """BFV scheme instance bound to a parameter set and a seeded RNG.

    Args:
        params: the BFV parameter set.
        seed: RNG seed (every experiment in the reproduction is seeded).
        multiplier: optional drop-in exact negacyclic multiplier (an object
            with ``multiply(a_centered, b_centered) -> list[int]``), e.g.
            :class:`repro.polymath.fastntt.RnsExactMultiplier` for the
            serving layer's vectorized backend. When omitted the scheme
            auto-selects: the batched-engine CRT multiplier where a
            word-sized auxiliary basis exists for ``n`` (the common case),
            with a transparent fallback to the exact pure-Python
            auxiliary-prime multiplier. Every multiplier computes the same
            exact integer product, so results are bit-identical regardless
            of the choice.
    """

    def __init__(self, params: BfvParameters, seed: int = 0, multiplier=None):
        self.params = params
        self.ring = PolynomialRing(params.n, params.q, allow_non_ntt=True)
        self._rng = random.Random(seed)
        self._ternary = TernarySampler(self._rng)
        self._gaussian = DiscreteGaussianSampler(self._rng, params.sigma)
        self._mult_ctx = multiplier or _default_multiplier(params.n, params.q)

    @property
    def multiplier_kind(self) -> str:
        """Which exact multiplier backs this instance (class name)."""
        return type(self._mult_ctx).__name__

    # ------------------------------------------------------------------
    # Key generation
    # ------------------------------------------------------------------

    def keygen(self, relin_digit_bits: int | None = 22) -> KeySet:
        """Generate secret, public, and (optionally) relinearization keys.

        Args:
            relin_digit_bits: digit width for the relin key's base-T
                decomposition; ``None`` skips relin-key generation.
        """
        n, q = self.params.n, self.params.q
        s = self.ring(self._ternary.sample(n))
        a = self.ring(sample_uniform(self._rng, n, q))
        e = self.ring(self._gaussian.sample(n))
        kp1 = -(self._exact_mul(a, s) + e)
        public = PublicKey(kp1=kp1, kp2=a)
        secret = SecretKey(s=s)
        relin = None
        if relin_digit_bits is not None:
            relin = self._make_relin_key(s, relin_digit_bits)
        return KeySet(secret=secret, public=public, relin=relin)

    def _make_relin_key(self, s: Polynomial, digit_bits: int) -> RelinKey:
        if digit_bits < 1:
            raise ValueError(f"digit_bits must be >= 1, got {digit_bits}")
        n, q = self.params.n, self.params.q
        s2 = self._exact_mul(s, s)
        num_digits = -(-q.bit_length() // digit_bits)
        rows = []
        power = 1
        for _ in range(num_digits):
            a_i = self.ring(sample_uniform(self._rng, n, q))
            e_i = self.ring(self._gaussian.sample(n))
            b_i = -(self._exact_mul(a_i, s) + e_i) + s2.scalar_mul(power)
            rows.append((b_i, a_i))
            power = (power << digit_bits) % q
        return RelinKey(rows=tuple(rows), digit_bits=digit_bits)

    # ------------------------------------------------------------------
    # Encrypt / decrypt (paper Eqs. 2-3)
    # ------------------------------------------------------------------

    def encrypt(self, plaintext: Polynomial, public: PublicKey) -> Ciphertext:
        """Encrypt a plaintext polynomial (coefficients mod t)."""
        self._check_plaintext(plaintext)
        n = self.params.n
        u = self.ring(self._ternary.sample(n))
        e1 = self.ring(self._gaussian.sample(n))
        e2 = self.ring(self._gaussian.sample(n))
        delta_m = self._lift_plaintext(plaintext).scalar_mul(self.params.delta)
        c1 = self._exact_mul(public.kp1, u) + e1 + delta_m
        c2 = self._exact_mul(public.kp2, u) + e2
        return Ciphertext([c1, c2], self.params)

    def encrypt_zero(self, public: PublicKey) -> Ciphertext:
        """Encrypt the zero polynomial (useful for randomization)."""
        zero = PolynomialRing(self.params.n, self.params.t, allow_non_ntt=True).zero()
        return self.encrypt(zero, public)

    def decrypt(self, ct: Ciphertext, secret: SecretKey) -> Polynomial:
        """Decrypt: ``m = round(t * (sum_i c_i s^i) / q) mod t``."""
        phase = self._phase(ct, secret)
        t, q = self.params.t, self.params.q
        pt_ring = PolynomialRing(self.params.n, t, allow_non_ntt=True)
        coeffs = []
        for c in phase.centered():
            coeffs.append(_round_div(t * c, q) % t)
        return pt_ring(coeffs)

    def noise_budget(self, ct: Ciphertext, secret: SecretKey) -> int:
        """Remaining invariant-noise budget in bits (0 = decryption at risk).

        Computed SEAL-style: the budget is ``log2(q / (2t)) - log2 ||w||``
        where ``w`` is the rounding residue of the phase. It shrinks with
        every homomorphic operation and reaches 0 right before decryption
        failures begin.
        """
        phase = self._phase(ct, secret)
        t, q = self.params.t, self.params.q
        worst = 0
        for c in phase.centered():
            m = _round_div(t * c, q)
            w = abs(t * c - m * q)  # |t*c - round(t*c/q)*q| <= q/2 * t_noise
            worst = max(worst, w)
        if worst == 0:
            return max(0, q.bit_length() - t.bit_length() - 1)
        budget = (q.bit_length() - 1) - (worst.bit_length() - 1) - 1
        return max(0, budget)

    def _phase(self, ct: Ciphertext, secret: SecretKey) -> Polynomial:
        """``sum_i c_i * s**i`` over ``R_q`` (the decryption phase)."""
        acc = ct.polys[0]
        s_pow = secret.s
        for c in ct.polys[1:]:
            acc = acc + self._exact_mul(c, s_pow)
            s_pow = self._exact_mul(s_pow, secret.s)
        return acc

    # ------------------------------------------------------------------
    # Homomorphic operations
    # ------------------------------------------------------------------

    def add(self, ca: Ciphertext, cb: Ciphertext) -> Ciphertext:
        """Homomorphic addition (componentwise, pads to the longer size)."""
        self._check_pair(ca, cb)
        size = max(ca.size, cb.size)
        zero = self.ring.zero()
        polys = []
        for i in range(size):
            pa = ca.polys[i] if i < ca.size else zero
            pb = cb.polys[i] if i < cb.size else zero
            polys.append(pa + pb)
        return Ciphertext(polys, self.params)

    def sub(self, ca: Ciphertext, cb: Ciphertext) -> Ciphertext:
        """Homomorphic subtraction."""
        self._check_pair(ca, cb)
        size = max(ca.size, cb.size)
        zero = self.ring.zero()
        polys = []
        for i in range(size):
            pa = ca.polys[i] if i < ca.size else zero
            pb = cb.polys[i] if i < cb.size else zero
            polys.append(pa - pb)
        return Ciphertext(polys, self.params)

    def multiply(self, ca: Ciphertext, cb: Ciphertext) -> Ciphertext:
        """Homomorphic multiplication: the Eq. 4 tensor.

        ``(cc1, cc2, cc3) = round(t/q * (ca1*cb1, ca1*cb2 + ca2*cb1,
        ca2*cb2))`` with the polynomial products taken over the integers
        (centered representatives) before scaling.
        """
        self._check_pair(ca, cb)
        if ca.size != 2 or cb.size != 2:
            raise ValueError("EvalMult expects 2-component ciphertexts; relinearize first")
        a1, a2 = (p.centered() for p in ca.polys)
        b1, b2 = (p.centered() for p in cb.polys)
        m11 = self._mult_ctx.multiply(a1, b1)
        m12 = self._mult_ctx.multiply(a1, b2)
        m21 = self._mult_ctx.multiply(a2, b1)
        m22 = self._mult_ctx.multiply(a2, b2)
        cross = [x + y for x, y in zip(m12, m21)]
        t, q = self.params.t, self.params.q
        scale = lambda vec: self.ring([_round_div(t * c, q) for c in vec])
        return Ciphertext([scale(m11), scale(cross), scale(m22)], self.params)

    def square(self, ct: Ciphertext) -> Ciphertext:
        """Homomorphic squaring (saves one integer product vs multiply)."""
        if ct.size != 2:
            raise ValueError("square expects a 2-component ciphertext")
        a1, a2 = (p.centered() for p in ct.polys)
        m11 = self._mult_ctx.multiply(a1, a1)
        m12 = self._mult_ctx.multiply(a1, a2)
        m22 = self._mult_ctx.multiply(a2, a2)
        cross = [2 * x for x in m12]
        t, q = self.params.t, self.params.q
        scale = lambda vec: self.ring([_round_div(t * c, q) for c in vec])
        return Ciphertext([scale(m11), scale(cross), scale(m22)], self.params)

    def relinearize(self, ct: Ciphertext, relin: RelinKey) -> Ciphertext:
        """Map a 3-component ciphertext back to 2 components.

        Decomposes ``cc3`` into base-T digits and folds each digit through
        the corresponding relin-key row — per digit this is one polynomial
        multiplication pair, i.e. the NTT/Hadamard work the chip-side cost
        model charges for relinearization.
        """
        if ct.size == 2:
            return ct.copy()
        if ct.size != 3:
            raise ValueError(f"relinearize expects size-3 ciphertext, got {ct.size}")
        c1, c2, c3 = ct.polys
        digits = self._decompose_digits(c3, relin)
        new_c1, new_c2 = c1, c2
        for d, (b_i, a_i) in zip(digits, relin.rows):
            new_c1 = new_c1 + self._exact_mul(d, b_i)
            new_c2 = new_c2 + self._exact_mul(d, a_i)
        return Ciphertext([new_c1, new_c2], self.params)

    def multiply_relin(self, ca: Ciphertext, cb: Ciphertext, relin: RelinKey) -> Ciphertext:
        """Convenience: Eq. 4 tensor followed by relinearization."""
        return self.relinearize(self.multiply(ca, cb), relin)

    def add_plain(self, ct: Ciphertext, plaintext: Polynomial) -> Ciphertext:
        """Add a plaintext polynomial: ``c1 += Delta * m``."""
        self._check_plaintext(plaintext)
        delta_m = self._lift_plaintext(plaintext).scalar_mul(self.params.delta)
        polys = list(ct.polys)
        polys[0] = polys[0] + delta_m
        return Ciphertext(polys, self.params)

    def multiply_plain(self, ct: Ciphertext, plaintext: Polynomial) -> Ciphertext:
        """Multiply by a plaintext polynomial (no tensor, no rescale).

        Each ciphertext component is multiplied by the *centered* plaintext
        so small-magnitude messages keep noise growth minimal — this is the
        ``ct*pt`` operation of the Table X application mixes.
        """
        self._check_plaintext(plaintext)
        if all(c == 0 for c in plaintext.coeffs):
            return Ciphertext([self.ring.zero() for _ in ct.polys], self.params)
        lifted = self._lift_plaintext(plaintext)
        polys = [self._exact_mul(p, lifted) for p in ct.polys]
        return Ciphertext(polys, self.params)

    def multiply_scalar(self, ct: Ciphertext, scalar: int) -> Ciphertext:
        """Multiply by an integer scalar mod t (chip op ``CMODMUL``)."""
        s = scalar % self.params.t
        if s > self.params.t // 2:
            s -= self.params.t  # centered lift keeps noise small
        polys = [p.scalar_mul(s) for p in ct.polys]
        return Ciphertext(polys, self.params)

    def negate(self, ct: Ciphertext) -> Ciphertext:
        return Ciphertext([-p for p in ct.polys], self.params)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _exact_mul(self, a: Polynomial, b: Polynomial) -> Polynomial:
        """Negacyclic product in ``R_q`` via the exact integer multiplier."""
        prod = self._mult_ctx.multiply(a.centered(), b.centered())
        return self.ring(prod)

    def _lift_plaintext(self, plaintext: Polynomial) -> Polynomial:
        """Centered lift of a mod-t plaintext into ``R_q``."""
        t = self.params.t
        half = t // 2
        coeffs = [c - t if c > half else c for c in plaintext.coeffs]
        return self.ring(coeffs)

    def _decompose_digits(self, poly: Polynomial, relin: RelinKey) -> list[Polynomial]:
        """Base-T digit decomposition of every coefficient of ``poly``."""
        mask = (1 << relin.digit_bits) - 1
        digit_coeffs: list[list[int]] = [[] for _ in range(relin.num_digits)]
        for c in poly.coeffs:
            for i in range(relin.num_digits):
                digit_coeffs[i].append(c & mask)
                c >>= relin.digit_bits
        return [self.ring(dc) for dc in digit_coeffs]

    def _check_pair(self, ca: Ciphertext, cb: Ciphertext) -> None:
        if ca.params is not cb.params and ca.params != cb.params:
            raise ValueError("ciphertexts use different parameter sets")

    def _check_plaintext(self, plaintext: Polynomial) -> None:
        if plaintext.ring.n != self.params.n:
            raise ValueError(
                f"plaintext degree {plaintext.ring.n} != scheme degree {self.params.n}"
            )
        if plaintext.ring.q != self.params.t:
            raise ValueError(
                f"plaintext modulus {plaintext.ring.q} != scheme t {self.params.t}"
            )


def _default_multiplier(n: int, q: int):
    """Auto-select the exact negacyclic multiplier for ``(n, q)``.

    Prefers the batched-engine CRT multiplier
    (:class:`~repro.polymath.fastntt.RnsExactMultiplier`) — every tower of
    its word-sized auxiliary basis runs through one vectorized pass — and
    falls back to the pure-Python wide-auxiliary-prime multiplier when no
    qualifying basis exists (or the engine is disabled via
    ``REPRO_ENGINE=off``). Both are exact over the integers, so the choice
    never changes a ciphertext bit.
    """
    from repro.polymath.engine import engine_enabled

    if engine_enabled():
        from repro.polymath.fastntt import RnsExactMultiplier

        try:
            return RnsExactMultiplier(n, q)
        except ValueError:
            pass  # no word-sized auxiliary basis for this degree
    return _ExactMultiplier(n, q)


class _ExactMultiplier:
    """Exact negacyclic product of centered integer polynomials.

    Products in ``EvalMult`` must be taken over the integers before the
    ``t/q`` scaling. Coefficients are bounded by ``n * (q/2)**2``, so an
    NTT over one auxiliary prime wide enough to hold that bound recovers the
    exact integer result from its centered residue.
    """

    def __init__(self, n: int, q: int):
        self.n = n
        # bound on |product coefficient|: n * (q/2)^2; need P > 2*bound.
        bound_bits = 2 * (q.bit_length() - 1) + n.bit_length() + 2
        self.aux_q = ntt_friendly_prime(n, bound_bits + 2)
        self.ctx = NttContext(n, self.aux_q)

    def multiply(self, a_centered: list[int], b_centered: list[int]) -> list[int]:
        """Return the exact integer negacyclic product of centered inputs."""
        p = self.aux_q
        fa = self.ctx.forward([x % p for x in a_centered])
        fb = self.ctx.forward([x % p for x in b_centered])
        prod = [x * y % p for x, y in zip(fa, fb)]
        res = self.ctx.inverse(prod)
        half = p // 2
        return [c - p if c > half else c for c in res]


def _round_div(numerator: int, denominator: int) -> int:
    """Round-half-away-from-zero integer division (the Eq. 4 rounding)."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    if numerator >= 0:
        return (2 * numerator + denominator) // (2 * denominator)
    return -((-2 * numerator + denominator) // (2 * denominator))
