"""Random samplers for RLWE: ternary secrets and small error polynomials.

Paper Eqs. 2-3: encryption uses "a random polynomial u from the set
{-1, 0, 1}" and "small random polynomials e1, e2 from a discrete Gaussian
distribution". All samplers draw from an injected ``random.Random`` so
every test and experiment is reproducible from a seed.
"""

from __future__ import annotations

import math
import random
from typing import Sequence


class TernarySampler:
    """Uniform sampler over {-1, 0, 1} coefficients.

    Used for the secret key and the encryption randomness ``u``.
    """

    def __init__(self, rng: random.Random):
        self._rng = rng

    def sample(self, n: int) -> list[int]:
        return [self._rng.randrange(3) - 1 for _ in range(n)]


class DiscreteGaussianSampler:
    """Discrete Gaussian sampler via rejection from a geometric envelope.

    Exact (up to float rounding in the acceptance ratio) and fast enough
    for key/ciphertext generation at the paper's degrees; standard
    deviation defaults to the HE-standard 3.2 used by SEAL.

    Args:
        rng: source of randomness.
        sigma: standard deviation.
        tail_cut: samples are clamped to ``[-tail_cut*sigma, tail_cut*sigma]``
            (probability of hitting the cut is < 2^-100 for the default 10).
    """

    def __init__(self, rng: random.Random, sigma: float = 3.2, tail_cut: float = 10.0):
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self._rng = rng
        self.sigma = sigma
        self._bound = int(math.ceil(sigma * tail_cut))

    def sample_one(self) -> int:
        """Draw one discrete Gaussian integer by bounded rejection."""
        sigma2 = 2.0 * self.sigma * self.sigma
        while True:
            x = self._rng.randint(-self._bound, self._bound)
            if self._rng.random() <= math.exp(-(x * x) / sigma2):
                return x

    def sample(self, n: int) -> list[int]:
        return [self.sample_one() for _ in range(n)]


class CenteredBinomialSampler:
    """Centered binomial approximation of a discrete Gaussian.

    ``sum of k fair-coin differences`` has variance ``k/2``; with
    ``k = 21`` the variance matches sigma = 3.24. This is the cheaper
    sampler hardware implementations typically prefer, provided as an
    alternative error distribution.
    """

    def __init__(self, rng: random.Random, k: int = 21):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._rng = rng
        self.k = k

    @property
    def sigma(self) -> float:
        return math.sqrt(self.k / 2.0)

    def sample_one(self) -> int:
        bits = self._rng.getrandbits(2 * self.k)
        ones_a = bin(bits & ((1 << self.k) - 1)).count("1")
        ones_b = bin(bits >> self.k).count("1")
        return ones_a - ones_b

    def sample(self, n: int) -> list[int]:
        return [self.sample_one() for _ in range(n)]


def sample_uniform(rng: random.Random, n: int, q: int) -> list[int]:
    """Uniform polynomial over ``Z_q`` (the public key's ``a`` component)."""
    return [rng.randrange(q) for _ in range(n)]


def infinity_norm(coeffs: Sequence[int]) -> int:
    """Max |coefficient| of a signed coefficient vector."""
    return max((abs(c) for c in coeffs), default=0)
