"""BFV parameter sets, including the two configurations the paper evaluates.

Section VI-B fixes ``(n, log q) = (2^12, 109)`` and ``(2^13, 218)`` — both
providing 128-bit classical security per the Homomorphic Encryption
Security Standard the paper cites. The same parameter object also records
how each platform splits ``q`` into RNS towers: SEAL on a 64-bit CPU uses
~55-bit towers (109 -> 54+55, 218 -> 54+54+55+55) while CoFHEE's native
128-bit datapath uses 109-bit towers (109 -> one tower, 218 -> two).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.polymath.primes import ntt_friendly_prime
from repro.polymath.rns import RnsBasis, plan_towers

#: Largest tower width a 64-bit software implementation uses (SEAL keeps
#: moduli below 62 bits; the paper quotes 54/55-bit towers).
CPU_WORD_BITS = 55

#: Largest tower width CoFHEE handles natively (128-bit datapath; the paper
#: uses 109-bit towers so two of them cover log q = 218).
COFHEE_WORD_BITS = 109


@dataclass(frozen=True)
class BfvParameters:
    """A concrete BFV parameter set.

    Attributes:
        n: polynomial degree (power of two).
        q: ciphertext coefficient modulus (product of the CPU towers, so it
            is exactly representable on both platforms).
        t: plaintext modulus.
        sigma: standard deviation of the error distribution.
        cpu_basis: RNS basis a 64-bit CPU (SEAL) would use for ``q``.
        cofhee_basis: RNS basis CoFHEE's 128-bit datapath would use. The
            composite modulus differs from ``q`` only in tower granularity
            when built via :meth:`from_paper`; for the evaluation only the
            *tower counts* matter (each tower does the same Eq. 4 work).
    """

    n: int
    q: int
    t: int
    sigma: float = 3.2
    cpu_basis: RnsBasis = field(repr=False, default=None)  # type: ignore[assignment]
    cofhee_basis: RnsBasis = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self):
        if self.n < 2 or self.n & (self.n - 1):
            raise ValueError(f"n must be a power of two, got {self.n}")
        if self.t < 2:
            raise ValueError(f"plaintext modulus must be >= 2, got {self.t}")
        if self.q <= self.t:
            raise ValueError("ciphertext modulus must exceed plaintext modulus")

    @property
    def delta(self) -> int:
        """The encryption scaling factor Delta = floor(q / t)."""
        return self.q // self.t

    @property
    def log_q(self) -> int:
        return self.q.bit_length()

    @property
    def cpu_tower_count(self) -> int:
        """Towers a 64-bit CPU needs (drives SEAL's per-op work in Fig. 6)."""
        if self.cpu_basis is not None:
            return len(self.cpu_basis)
        return -(-self.log_q // CPU_WORD_BITS)

    @property
    def cofhee_tower_count(self) -> int:
        """Towers CoFHEE needs (1 for log q = 109, 2 for 218)."""
        if self.cofhee_basis is not None:
            return len(self.cofhee_basis)
        return -(-self.log_q // COFHEE_WORD_BITS)

    @classmethod
    def from_paper(
        cls, n: int, log_q: int, t: int | None = None, sigma: float = 3.2
    ) -> "BfvParameters":
        """Build one of the paper's parameter sets.

        ``q`` is assembled from the CPU's RNS towers (like SEAL builds its
        coeff_modulus from the prime list), so the software baseline is
        bit-exact; the CoFHEE basis uses ``COFHEE_WORD_BITS``-wide towers of
        the same total width.

        Args:
            n: polynomial degree, e.g. ``2**12`` or ``2**13``.
            log_q: total coefficient-modulus bits, e.g. 109 or 218.
            t: plaintext modulus. Defaults to the smallest batching-friendly
                prime (``t === 1 mod 2n``) of at least 16 bits.
        """
        cpu_moduli = plan_towers(log_q, CPU_WORD_BITS, n)
        cofhee_moduli = plan_towers(log_q, COFHEE_WORD_BITS, n)
        q = 1
        for m in cpu_moduli:
            q *= m
        if t is None:
            t = ntt_friendly_prime(n, max(17, n.bit_length() + 2))
        return cls(
            n=n,
            q=q,
            t=t,
            sigma=sigma,
            cpu_basis=RnsBasis(cpu_moduli),
            cofhee_basis=RnsBasis(cofhee_moduli),
        )

    @classmethod
    def toy(cls, n: int = 16, log_q: int = 60, t: int | None = None) -> "BfvParameters":
        """Small insecure parameters for unit tests and examples."""
        q = ntt_friendly_prime(n, log_q)
        if t is None:
            t = ntt_friendly_prime(n, 12)
        return cls(n=n, q=q, t=t, cpu_basis=RnsBasis([q]), cofhee_basis=RnsBasis([q]))

    @classmethod
    def toy_rns(
        cls, n: int = 16, towers: int = 3, tower_bits: int = 20,
        t: int | None = None,
    ) -> "BfvParameters":
        """Small insecure *multi-tower* parameters for tower-sharding tests.

        ``q`` is the product of ``towers`` distinct NTT-friendly primes of
        ``tower_bits`` bits each, and **both** platform bases use exactly
        those towers — so every tower is chip-native (``q_i === 1 mod 2n``)
        and a pool can shard one EvalMult across workers.
        """
        if towers < 1:
            raise ValueError(f"need at least one tower, got {towers}")
        moduli = plan_towers(towers * tower_bits, tower_bits, n)
        q = 1
        for m in moduli:
            q *= m
        if t is None:
            # Smallest batching-friendly width that actually has a prime
            # (some widths have no q = 2kn + 1 prime at all, e.g. 15 bits
            # at n = 2^12).
            bits = max(12, n.bit_length() + 2)
            while t is None:
                try:
                    t = ntt_friendly_prime(n, bits)
                except ValueError:
                    bits += 1
        basis = RnsBasis(moduli)
        return cls(n=n, q=q, t=t, cpu_basis=basis, cofhee_basis=basis)

    def describe(self) -> str:
        return (
            f"BFV(n=2^{self.n.bit_length() - 1}, log q={self.log_q}, t={self.t}, "
            f"CPU towers={self.cpu_tower_count}, CoFHEE towers={self.cofhee_tower_count})"
        )


def _build_presets() -> dict[str, BfvParameters]:
    return {
        "paper_small": BfvParameters.from_paper(n=2**12, log_q=109),
        "paper_large": BfvParameters.from_paper(n=2**13, log_q=218),
    }


class _LazyPresets:
    """Dict-like lazy preset table (prime search only on first access)."""

    def __init__(self):
        self._cache: dict[str, BfvParameters] = {}

    def __getitem__(self, key: str) -> BfvParameters:
        if key not in self._cache:
            if key == "paper_small":
                self._cache[key] = BfvParameters.from_paper(n=2**12, log_q=109)
            elif key == "paper_large":
                self._cache[key] = BfvParameters.from_paper(n=2**13, log_q=218)
            else:
                raise KeyError(key)
        return self._cache[key]

    def keys(self):
        return ("paper_small", "paper_large")


#: The two evaluation parameter sets of Section VI-B, built on demand:
#: ``paper_small`` = (2^12, 109), ``paper_large`` = (2^13, 218).
SEAL_PRESETS = _LazyPresets()
