"""Analytic noise-growth bounds and parameter security estimation.

Two pieces the evaluation leans on implicitly:

* **noise budgets** — the paper's parameter choices (fewer, wider RNS
  towers; per-application relinearization digit widths in the Table X
  model) are noise-budget trades. :class:`NoiseModel` provides standard
  worst-case BFV noise bounds per operation, so circuit depth vs parameter
  questions are answerable analytically — and the model is validated
  against the *measured* invariant-noise budgets of the functional scheme;
* **security** — Section VI-B: the (2^12, 109) and (2^13, 218) sets
  "provide a security level of 128 bits against classical computers".
  :func:`security_level_bits` implements the Homomorphic Encryption
  Security Standard's lookup (the table the paper cites as [24]) by
  interpolating its ternary-secret classical-hardness rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bfv.params import BfvParameters

#: HE Security Standard (Albrecht et al. 2018), Table for ternary secrets,
#: classical security: max log2(q) at each (n, lambda).
#: {n: {security_bits: max_log_q}}
_HE_STANDARD_MAX_LOG_Q = {
    1024: {128: 27, 192: 19, 256: 14},
    2048: {128: 54, 192: 37, 256: 29},
    4096: {128: 109, 192: 75, 256: 58},
    8192: {128: 218, 192: 152, 256: 118},
    16384: {128: 438, 192: 305, 256: 237},
    32768: {128: 881, 192: 611, 256: 476},
}


def max_log_q_for_security(n: int, security_bits: int = 128) -> int:
    """Largest coefficient-modulus width meeting the target security."""
    if n not in _HE_STANDARD_MAX_LOG_Q:
        raise ValueError(f"no HE-standard row for n = {n}")
    table = _HE_STANDARD_MAX_LOG_Q[n]
    if security_bits not in table:
        raise ValueError(f"no HE-standard column for {security_bits}-bit security")
    return table[security_bits]


def security_level_bits(n: int, log_q: int) -> int:
    """Classical security estimate for ternary-secret RLWE at (n, log q).

    Piecewise from the HE-standard rows: returns the highest standard level
    (256/192/128) whose budget the modulus respects, or a proportional
    sub-128 estimate when q is oversized (security degrades roughly
    linearly in log q at fixed n).
    """
    if n not in _HE_STANDARD_MAX_LOG_Q:
        raise ValueError(f"no HE-standard row for n = {n}")
    table = _HE_STANDARD_MAX_LOG_Q[n]
    for level in (256, 192, 128):
        if log_q <= table[level]:
            return level
    return int(128 * table[128] / log_q)


@dataclass(frozen=True)
class NoiseBound:
    """A worst-case infinity-norm bound on invariant noise, in bits."""

    bits: float

    def budget_bits(self, params: BfvParameters) -> float:
        """Remaining budget: log2(q / (2t)) minus the noise magnitude."""
        return params.log_q - params.t.bit_length() - 1 - self.bits


class NoiseModel:
    """Worst-case BFV noise propagation (textbook bounds).

    All bounds track ``log2`` of the noise infinity norm. They are
    deliberately conservative; the property tests check they *upper-bound*
    the measured noise of the functional scheme.
    """

    def __init__(self, params: BfvParameters):
        self.params = params
        self._log_n = math.log2(params.n)
        self._log_t = math.log2(params.t)
        # ternary secret/randomness norm 1; error norm ~ tail-cut * sigma
        self._log_b_err = math.log2(10 * params.sigma)

    def fresh(self) -> NoiseBound:
        """Fresh encryption: ||v|| <= B_err * (2n + 1) + rounding."""
        bits = self._log_b_err + math.log2(2 * self.params.n + 1) + 1
        return NoiseBound(bits)

    def add(self, a: NoiseBound, b: NoiseBound) -> NoiseBound:
        """Addition: noises add."""
        return NoiseBound(max(a.bits, b.bits) + 1)

    def multiply(self, a: NoiseBound, b: NoiseBound) -> NoiseBound:
        """EvalMult: dominant term ~ t * n * (||v_a|| + ||v_b||) + t*n."""
        combined = max(a.bits, b.bits) + 1
        bits = self._log_t + self._log_n + combined + 2
        return NoiseBound(bits)

    def multiply_plain(self, a: NoiseBound) -> NoiseBound:
        """ct*pt with centered plaintext: scales by n * t/2 at worst."""
        return NoiseBound(a.bits + self._log_n + self._log_t - 1)

    def multiply_scalar(self, a: NoiseBound) -> NoiseBound:
        """ct * scalar (CMODMUL): scales by |scalar| <= t/2."""
        return NoiseBound(a.bits + self._log_t - 1)

    def relinearize(self, a: NoiseBound, digit_bits: int) -> NoiseBound:
        """Key switching adds ~ n * ell * T/2 * B_err of fresh noise."""
        if digit_bits < 1:
            raise ValueError("digit width must be >= 1")
        num_digits = -(-self.params.log_q // digit_bits)
        added = (self._log_n + math.log2(num_digits) + digit_bits - 1
                 + self._log_b_err)
        return NoiseBound(max(a.bits, added) + 1)

    # -- circuit-level queries ------------------------------------------

    def multiplicative_depth(self, digit_bits: int = 22) -> int:
        """Levels of multiply+relinearize before the budget is exhausted."""
        bound = self.fresh()
        depth = 0
        while True:
            nxt = self.relinearize(self.multiply(bound, bound), digit_bits)
            if nxt.budget_bits(self.params) <= 0:
                return depth
            bound = nxt
            depth += 1
            if depth > 64:  # parameters with absurd headroom
                return depth

    def digit_bits_for_depth(self, depth: int) -> int | None:
        """Widest relin digit that still supports the requested depth —
        the knob the Table X cost model turns per application."""
        for digit_bits in range(min(60, self.params.log_q), 0, -1):
            if self._depth_with(digit_bits) >= depth:
                return digit_bits
        return None

    def _depth_with(self, digit_bits: int) -> int:
        bound = self.fresh()
        depth = 0
        while depth <= 64:
            nxt = self.relinearize(self.multiply(bound, bound), digit_bits)
            if nxt.budget_bits(self.params) <= 0:
                break
            bound = nxt
            depth += 1
        return depth
