"""FPGA prototyping model (Section III-J).

"For our FPGA design, we implemented a scaled-down version of CoFHEE, as
n = 2^13 is incompatible with the available resources of our FPGAs.
Specifically, the maximum polynomial degree that could be supported on a
Digilent Nexys 4 is n = 2^12 running at 10 MHz."

The model captures the resource arithmetic that forces the scale-down
(block-RAM capacity vs the bank set) and builds a correspondingly
configured chip instance whose results remain bit-identical to the
full-size configuration — the property that made FPGA validation
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chip import ChipConfig, CoFHEE
from repro.core.memory import WORD_BITS


@dataclass(frozen=True)
class FpgaDevice:
    """Capacity summary of a prototyping board's FPGA."""

    name: str
    bram_kbits: int
    luts: int
    max_clock_mhz: float


#: Digilent Nexys 4: Artix-7 XC7A100T (4,860 Kb BRAM, 63,400 LUTs).
NEXYS4 = FpgaDevice("Digilent Nexys 4 (XC7A100T)", 4_860, 63_400, 100.0)

#: The paper's FPGA build point.
FPGA_PRESETS = {"nexys4": NEXYS4}


class FpgaBuild:
    """A scaled-down CoFHEE configuration for a given FPGA device."""

    #: Banks the architecture instantiates (3 DP + 4 SP data incl. twiddles).
    DATA_BANKS = 7
    #: Unlike ASIC SRAM (2x area for dual-port), Xilinx BRAM36 primitives
    #: are natively true-dual-port, so DP banks carry no capacity premium
    #: on the FPGA — which is exactly what lets n = 2^12 fit the Nexys 4.
    BRAM_COST_FACTOR = {True: 1.0, False: 1.0}
    #: Fraction of BRAM usable for the polynomial banks (CM0 memory,
    #: FIFOs, and synthesis overhead consume the rest).
    BRAM_BUDGET = 0.80

    def __init__(self, device: FpgaDevice = NEXYS4, clock_mhz: float = 10.0):
        if clock_mhz <= 0 or clock_mhz > device.max_clock_mhz:
            raise ValueError(
                f"clock {clock_mhz} MHz outside (0, {device.max_clock_mhz}]"
            )
        self.device = device
        self.clock_mhz = clock_mhz

    def bank_kbits(self, n: int) -> float:
        """BRAM kilobits one degree-n bank consumes."""
        return n * WORD_BITS / 1024

    def total_kbits(self, n: int) -> float:
        """All data banks, with the dual-port premium."""
        dp = 3 * self.bank_kbits(n) * self.BRAM_COST_FACTOR[True]
        sp = 4 * self.bank_kbits(n) * self.BRAM_COST_FACTOR[False]
        return dp + sp

    def max_degree(self) -> int:
        """Largest power-of-two degree whose bank set fits the BRAM budget.

        For the Nexys 4 this evaluates to n = 2^12, matching the paper.
        """
        budget = self.device.bram_kbits * self.BRAM_BUDGET
        n = 2
        while self.total_kbits(2 * n) <= budget:
            n *= 2
        return n

    def fits(self, n: int) -> bool:
        return self.total_kbits(n) <= self.device.bram_kbits * self.BRAM_BUDGET

    def instantiate(self) -> CoFHEE:
        """Build the scaled-down chip model (banks sized to max_degree,
        FPGA clock)."""
        return CoFHEE(
            ChipConfig(
                poly_words=self.max_degree(),
                frequency_hz=self.clock_mhz * 1e6,
            )
        )

    def slowdown_vs_silicon(self) -> float:
        """Wall-clock factor vs the 250 MHz chip at equal cycle counts."""
        return 250.0 / self.clock_mhz
