"""Verification substrate: pre-silicon test vectors, FPGA prototyping,
and post-silicon bring-up (Sections III-J and V-F).

The paper's verification flow has three legs, all modeled here:

* **simulation** — a Python script generates the modulus ``q = 2kn + 1``,
  twiddle factors, random input polynomials, and expected results, which a
  Verilog testbench replays against the RTL
  (:mod:`repro.verification.vectors` is that script as a library, and
  :class:`repro.verification.harness.GoldenHarness` replays the vectors
  against this repository's chip model exactly as the testbench did);
* **FPGA validation** — a scaled-down build (n = 2^12 maximum on a
  Digilent Nexys 4, 10 MHz) exercised the design in hardware
  (:mod:`repro.verification.fpga`);
* **post-silicon bring-up** — the packaged chip on a breadboard behind an
  FTDI USB-UART: read the SIGNATURE register, walk the configuration
  registers, then run compute smoke tests
  (:mod:`repro.verification.bringup`).
"""

from repro.verification.vectors import TestVector, TestVectorGenerator
from repro.verification.harness import GoldenHarness, VectorResult
from repro.verification.fpga import FPGA_PRESETS, FpgaBuild
from repro.verification.bringup import BringUpReport, PostSiliconValidator

__all__ = [
    "BringUpReport",
    "FPGA_PRESETS",
    "FpgaBuild",
    "GoldenHarness",
    "PostSiliconValidator",
    "TestVector",
    "TestVectorGenerator",
    "VectorResult",
]
