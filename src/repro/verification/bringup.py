"""Post-silicon bring-up model (Section V-F).

The validation setup: the packaged chip (48-pin QFN on a DIP adapter)
behind a UMFT230XA USB-UART bridge supplying the 3.3 V IO rail and the
reference clock, a DC-DC module deriving the 1.2 V core rail, and a second
USB-UART breakout receiving the computation-complete interrupt.
"Our post-silicon validation setup ... confirms that the fabricated chip
is fully functional."

:class:`PostSiliconValidator` runs the canonical bring-up ladder against a
chip instance: supply/clock sanity, SIGNATURE read (chip ID), register
write/readback walk, a DMA loopback, and compute smoke tests of increasing
depth — accumulating a pass/fail report with UART time accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.chip import CoFHEE
from repro.core.driver import CofheeDriver
from repro.core.regs import CHIP_SIGNATURE
from repro.polymath.ntt import reference_negacyclic_multiply
from repro.polymath.primes import ntt_friendly_prime

#: Bench supplies (Section V-F).
IO_RAIL_V = 3.3
CORE_RAIL_V = 1.2


@dataclass
class BringUpStep:
    name: str
    passed: bool
    detail: str = ""


@dataclass
class BringUpReport:
    steps: list[BringUpStep] = field(default_factory=list)
    uart_seconds: float = 0.0

    @property
    def fully_functional(self) -> bool:
        return bool(self.steps) and all(s.passed for s in self.steps)

    def add(self, name: str, passed: bool, detail: str = "") -> None:
        self.steps.append(BringUpStep(name, passed, detail))

    def __str__(self) -> str:
        lines = [f"[{'PASS' if s.passed else 'FAIL'}] {s.name}"
                 + (f" — {s.detail}" if s.detail else "")
                 for s in self.steps]
        verdict = "chip fully functional" if self.fully_functional else \
            "bring-up FAILED"
        return "\n".join(lines + [verdict])


class PostSiliconValidator:
    """The bring-up ladder, executed over the modeled UART link."""

    def __init__(self, chip: CoFHEE | None = None, seed: int = 55):
        self.chip = chip or CoFHEE()
        self.driver = CofheeDriver(self.chip, interface="uart")
        self._rng = random.Random(seed)

    def run(self, smoke_degree: int = 256) -> BringUpReport:
        """Run every bring-up step; stops early only on supply failure."""
        report = BringUpReport()
        self._check_supplies(report)
        if not report.fully_functional:
            return report
        self._check_signature(report)
        self._walk_registers(report)
        self._dma_loopback(report)
        self._compute_smoke(report, smoke_degree)
        return report

    # -- steps ---------------------------------------------------------------

    def _check_supplies(self, report: BringUpReport) -> None:
        """Rail sanity: the DC-DC's 1.2 V core and the FTDI's 3.3 V IO."""
        ok = IO_RAIL_V == 3.3 and CORE_RAIL_V == 1.2
        report.add("supply rails", ok, f"IO {IO_RAIL_V} V, core {CORE_RAIL_V} V")

    def _check_signature(self, report: BringUpReport) -> None:
        """First sign of life: read the chip-ID register."""
        report.uart_seconds += self.chip.uart.register_write()
        value = self.chip.regs.read("SIGNATURE")
        report.add("SIGNATURE read", value == CHIP_SIGNATURE,
                   f"0x{value:08X}")

    def _walk_registers(self, report: BringUpReport) -> None:
        """Write/readback walking patterns through a scratch register."""
        patterns = (0x0000_0000, 0xFFFF_FFFF, 0xAAAA_AAAA, 0x5555_5555)
        ok = True
        for p in patterns:
            self.chip.regs.write("DBG_REG", p)
            report.uart_seconds += 2 * self.chip.uart.register_write()
            ok &= self.chip.regs.read("DBG_REG") == p
        report.add("register walk", ok, f"{len(patterns)} patterns")

    def _dma_loopback(self, report: BringUpReport) -> None:
        """Write a block, DMA it to another bank, read it back."""
        mm = self.chip.memory_map
        data = [self._rng.getrandbits(128) for _ in range(64)]
        self.chip.bus.burst_write(mm.base_address("SP0"), data)
        self.chip.dma.copy(mm.base_address("SP0"), mm.base_address("SP1"), 64)
        got, _ = self.chip.bus.burst_read(mm.base_address("SP1"), 64)
        report.uart_seconds += self.chip.uart.transfer_seconds(64 * 128) * 2
        report.add("DMA loopback", got == data, "64 words SP0 -> SP1")

    def _compute_smoke(self, report: BringUpReport, n: int) -> None:
        """NTT round-trip then a full polynomial multiplication."""
        q = ntt_friendly_prime(n, 60)
        report.uart_seconds += self.driver.program(q, n)
        a = [self._rng.randrange(q) for _ in range(n)]
        b = [self._rng.randrange(q) for _ in range(n)]
        report.uart_seconds += self.driver.load_polynomial("P0", a)
        report.uart_seconds += self.driver.load_polynomial("P1", b)

        self.driver.ntt("P0", "P2")
        self.driver.intt("P2", "P3")
        got, dt = self.driver.read_polynomial("P3")
        report.uart_seconds += dt
        report.add("NTT/iNTT round-trip", got == a, f"n={n}")

        report.uart_seconds += self.driver.load_polynomial("P0", a)
        self.driver.polynomial_multiply("P0", "P1", "P4")
        got, dt = self.driver.read_polynomial("P4")
        report.uart_seconds += dt
        expected = reference_negacyclic_multiply(a, b, q)
        report.add("polynomial multiplication", got == expected,
                   "host-checked against golden model")
