"""Test-vector generation — the paper's pre-silicon verification script.

Section III-J: "A python script is used to calculate the modulus following
the equation q = 2k*n + 1 ... the script finds twiddle factors, generates
random input polynomial coefficients, and calculates expected results. We
use random coefficient values modulo q for our test polynomials since the
128-bit operand range cannot be exhaustively tested."

This module is that script as a library: it produces self-contained
:class:`TestVector` records (inputs + golden outputs) for every Table I
operation, plus the Verilog-testbench-style hex dump the RTL flow consumed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.isa import Opcode
from repro.polymath.bitrev import bit_reverse_permute
from repro.polymath.modmath import modinv
from repro.polymath.ntt import NttContext
from repro.polymath.primes import ntt_friendly_prime


@dataclass(frozen=True)
class TestVector:
    """One directed or random test case: inputs and the golden output."""

    __test__ = False  # not a pytest class, despite the name

    opcode: Opcode
    n: int
    q: int
    x: tuple[int, ...]
    y: tuple[int, ...] | None
    constant: int
    expected: tuple[int, ...]
    description: str = ""


class TestVectorGenerator:
    """Deterministic vector generator for a given (n, q).

    (The ``Test`` prefix mirrors the paper's terminology; ``__test__`` is
    cleared so pytest does not try to collect it.)

    Args:
        n: polynomial degree (power of two).
        coeff_bits: modulus width; the generator derives
            ``q = ntt_friendly_prime(n, coeff_bits)`` like the paper's
            script derives ``q = 2kn + 1``.
        seed: RNG seed — the whole regression is reproducible.
    """

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, n: int, coeff_bits: int = 109, seed: int = 0xC0F4EE):
        self.n = n
        self.q = ntt_friendly_prime(n, coeff_bits)
        self.ctx = NttContext(self.n, self.q)
        self._rng = random.Random(seed)

    def _poly(self) -> list[int]:
        """Random coefficients modulo q (the non-exhaustive-range policy)."""
        return [self._rng.randrange(self.q) for _ in range(self.n)]

    # -- per-opcode golden models ------------------------------------------

    def vector(self, opcode: Opcode) -> TestVector:
        """One random vector with its golden result for ``opcode``."""
        q, n = self.q, self.n
        x = self._poly()
        y = None
        constant = 0
        if opcode is Opcode.NTT:
            expected = self.ctx.forward(x)
        elif opcode is Opcode.INTT:
            constant = modinv(n, q)
            expected = self.ctx.inverse(x)
        elif opcode is Opcode.PMODADD:
            y = self._poly()
            expected = [(a + b) % q for a, b in zip(x, y)]
        elif opcode is Opcode.PMODSUB:
            y = self._poly()
            expected = [(a - b) % q for a, b in zip(x, y)]
        elif opcode is Opcode.PMODMUL:
            y = self._poly()
            expected = [a * b % q for a, b in zip(x, y)]
        elif opcode is Opcode.PMODSQR:
            expected = [a * a % q for a in x]
        elif opcode is Opcode.CMODMUL:
            constant = self._rng.randrange(q)
            expected = [a * constant % q for a in x]
        elif opcode is Opcode.PMUL:
            y = self._poly()
            expected = [(a * b) & ((1 << 128) - 1) for a, b in zip(x, y)]
        elif opcode is Opcode.MEMCPY:
            expected = list(x)
        elif opcode is Opcode.MEMCPYR:
            expected = bit_reverse_permute(x)
        else:  # pragma: no cover
            raise ValueError(f"no golden model for {opcode}")
        return TestVector(
            opcode=opcode, n=n, q=q, x=tuple(x),
            y=tuple(y) if y is not None else None,
            constant=constant, expected=tuple(expected),
            description=f"random {opcode.value} n={n} q={q.bit_length()}b",
        )

    def regression_suite(self, per_opcode: int = 1) -> list[TestVector]:
        """Vectors covering every Table I operation."""
        suite = []
        for opcode in Opcode:
            for _ in range(per_opcode):
                suite.append(self.vector(opcode))
        return suite

    def directed_corner_vectors(self) -> list[TestVector]:
        """Directed cases the random sweep is unlikely to hit: all-zero,
        all-(q-1), delta impulse, and the x^n = -1 wrap."""
        q, n = self.q, self.n
        zero = (0,) * n
        ones = tuple([1] + [0] * (n - 1))
        maxed = (q - 1,) * n
        delta_fwd = self.ctx.forward(list(ones))
        return [
            TestVector(Opcode.NTT, n, q, zero, None, 0, zero,
                       "NTT of zero polynomial"),
            TestVector(Opcode.NTT, n, q, ones, None, 0, tuple(delta_fwd),
                       "NTT of delta = all-ones spectrum"),
            TestVector(Opcode.PMODADD, n, q, maxed, maxed, 0,
                       tuple((2 * (q - 1)) % q for _ in range(n)),
                       "saturating addition at q-1"),
            TestVector(Opcode.PMODSQR, n, q, maxed, None, 0,
                       tuple((q - 1) * (q - 1) % q for _ in range(n)),
                       "squaring at the operand maximum"),
        ]

    # -- testbench export ---------------------------------------------------

    def to_testbench_hex(self, vector: TestVector) -> list[str]:
        """Render a vector as the hex lines a Verilog testbench $readmemh's.

        Layout: header line (opcode index, log2 n, constant), then x, then
        y (if any), then the expected words — all 128-bit zero-padded hex.
        """
        op_index = list(Opcode).index(vector.opcode)
        lines = [f"{op_index:02x}_{vector.n.bit_length() - 1:02x}",
                 f"{vector.constant:032x}", f"{vector.q:032x}"]
        lines += [f"{c:032x}" for c in vector.x]
        if vector.y is not None:
            lines += [f"{c:032x}" for c in vector.y]
        lines += [f"{c:032x}" for c in vector.expected]
        return lines
