"""Golden-model harness: replay test vectors against the chip model.

The RTL testbench loaded each vector's operands into the SRAMs, triggered
the operation, and compared the result memory against the expected words.
:class:`GoldenHarness` performs exactly that sequence against the
cycle-level model, at the bit-exact ``pe`` fidelity by default.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chip import ChipConfig, CoFHEE
from repro.core.driver import CofheeDriver
from repro.core.isa import Command, Opcode
from repro.verification.vectors import TestVector


@dataclass(frozen=True)
class VectorResult:
    """Outcome of replaying one test vector."""

    vector: TestVector
    passed: bool
    cycles: int
    first_mismatch: int | None = None  # coefficient index

    def __str__(self) -> str:
        status = "PASS" if self.passed else f"FAIL @{self.first_mismatch}"
        return f"[{status}] {self.vector.description} ({self.cycles} cc)"


class GoldenHarness:
    """Replays vectors through the driver and diffs against golden outputs.

    Args:
        fidelity: MDMC fidelity; ``"pe"`` (default) exercises the Barrett
            datapath per butterfly like the RTL simulation did.
    """

    def __init__(self, fidelity: str = "pe"):
        self.fidelity = fidelity

    def run(self, vector: TestVector) -> VectorResult:
        """Load, execute, compare — one testbench iteration."""
        chip = CoFHEE(ChipConfig(fidelity=self.fidelity))
        driver = CofheeDriver(chip)
        driver.program(vector.q, vector.n)
        driver.load_polynomial("P0", list(vector.x))
        if vector.y is not None:
            driver.load_polynomial("P1", list(vector.y))
        cmd = self._command_for(driver, vector)
        report = driver.execute([cmd], label=vector.opcode.value)
        got, _ = driver.read_polynomial("P2")
        mismatch = next(
            (i for i, (g, e) in enumerate(zip(got, vector.expected)) if g != e),
            None,
        )
        return VectorResult(
            vector=vector, passed=mismatch is None,
            cycles=report.cycles, first_mismatch=mismatch,
        )

    def run_suite(self, vectors: list[TestVector]) -> list[VectorResult]:
        return [self.run(v) for v in vectors]

    @staticmethod
    def summarize(results: list[VectorResult]) -> dict[str, int]:
        return {
            "total": len(results),
            "passed": sum(1 for r in results if r.passed),
            "failed": sum(1 for r in results if not r.passed),
        }

    def _command_for(self, driver: CofheeDriver, vector: TestVector) -> Command:
        op = vector.opcode
        if op is Opcode.NTT:
            return driver.ntt_command("P0", "P2")
        if op is Opcode.INTT:
            return driver.intt_command("P0", "P2")
        if op in (Opcode.MEMCPY, Opcode.MEMCPYR):
            return Command(op, x_addr=driver.buffer_address("P0"),
                           out_addr=driver.buffer_address("P2"),
                           length=vector.n)
        y = "P1" if op.needs_y_operand else None
        return driver.pointwise_command(op, "P0", "P2", y=y,
                                        constant=vector.constant)
